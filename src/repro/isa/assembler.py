"""A small assembler for the modelled ISA, with the paper's EDE syntax.

The paper writes EDE instructions with a parenthesised key pair before the
original operands, e.g.::

    dc cvap (1, 0), x2
    str (0, 1), x3, [x0]
    join (3, 1, 2)
    wait_key (1)
    wait_all_keys

The assembler also accepts the plain AArch64 subset used in the paper's
examples (Figures 4 and 12): ``ldr``, ``str``, ``stp``, ``mov``, ``add``,
``sub``, ``cmp``, ``b``, ``b.<cond>``, ``bl``, ``ret``, ``dc cvap``,
``dsb sy``, ``dmb st``, ``dmb sy``, ``nop`` and ``halt``.  Comments start
with ``;`` or ``//``.  A trailing ``label:`` introduces a label.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Tuple

from repro.isa import instructions as ops
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import parse_reg


class AssemblerError(ValueError):
    """Raised on a malformed assembly line."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__("line %d: %s: %r" % (line_number, message, line))
        self.line_number = line_number
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_EDK_RE = re.compile(r"^\(\s*(\d+)\s*(?:,\s*(\d+)\s*)?(?:,\s*(\d+)\s*)?\)$")
_MEM_RE = re.compile(r"^\[\s*([a-zA-Z]\w*)\s*(?:,\s*#(-?\d+)\s*)?\]$")


def _split_comment(line: str) -> Tuple[str, Optional[str]]:
    """Split a source line into code and its trailing comment text."""
    cut = None
    for marker in (";", "//"):
        index = line.find(marker)
        if index >= 0 and (cut is None or index < cut[0]):
            cut = (index, len(marker))
    if cut is None:
        return line.strip(), None
    index, width = cut
    return line[:index].strip(), line[index + width:].strip()


def _strip_comment(line: str) -> str:
    return _split_comment(line)[0]


def _split_operands(text: str) -> List[str]:
    """Split an operand string on commas that are not inside () or []."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_edk(token: str) -> Optional[Tuple[int, int, int]]:
    match = _EDK_RE.match(token)
    if not match:
        return None
    values = [int(group) if group is not None else 0 for group in match.groups()]
    return values[0], values[1], values[2]


def _parse_mem(token: str) -> Tuple[int, int]:
    match = _MEM_RE.match(token)
    if not match:
        raise ValueError("expected memory operand, got %r" % (token,))
    offset = int(match.group(2)) if match.group(2) else 0
    return parse_reg(match.group(1)), offset


def _parse_imm(token: str) -> int:
    if not token.startswith("#"):
        raise ValueError("expected immediate, got %r" % (token,))
    return int(token[1:], 0)


def assemble_line(line: str) -> Optional[ops.Instruction]:
    """Assemble a single (comment-stripped, label-free) line.

    Returns None for an empty line.
    """
    text = line.strip()
    if not text:
        return None
    lowered = text.lower()

    # Multi-word fixed mnemonics first.
    if lowered == "dsb sy":
        return ops.dsb_sy()
    if lowered == "dmb st":
        return ops.dmb_st()
    if lowered == "dmb sy":
        return ops.dmb_sy()
    if lowered == "wait_all_keys":
        return ops.wait_all_keys()
    if lowered == "nop":
        return ops.nop()
    if lowered == "halt":
        return ops.halt()
    if lowered == "ret":
        return ops.Instruction(Opcode.RET, src=(30,))

    if lowered.startswith("dc cvap"):
        rest = text[len("dc cvap"):].strip()
        if rest.startswith(","):
            rest = rest[1:].strip()
        parts = _split_operands(rest)
        keys = _parse_edk(parts[0]) if parts else None
        if keys is not None:
            if len(parts) != 2:
                raise ValueError("dc cvap with EDKs takes one register")
            return ops.dc_cvap_ede(parse_reg(parts[1]), keys[0], keys[1])
        if len(parts) != 1:
            raise ValueError("dc cvap takes one register")
        return ops.dc_cvap(parse_reg(parts[0]))

    mnemonic, _, operand_text = text.partition(" ")
    mnemonic = mnemonic.lower()
    operands = _split_operands(operand_text)

    if mnemonic == "wait_key":
        keys = _parse_edk(operands[0]) if operands else None
        if keys is None:
            raise ValueError("wait_key requires a key, e.g. wait_key (1)")
        return ops.wait_key(keys[0])

    if mnemonic == "join":
        keys = _parse_edk(operands[0]) if operands else None
        if keys is None:
            raise ValueError("join requires keys, e.g. join (3, 1, 2)")
        return ops.join(keys[0], keys[1], keys[2])

    if mnemonic in ("b", "bl"):
        if len(operands) != 1:
            raise ValueError("%s takes one target" % mnemonic)
        opcode = Opcode.B if mnemonic == "b" else Opcode.BL
        return ops.Instruction(opcode, target=operands[0])

    if mnemonic.startswith("b."):
        cond = mnemonic[2:]
        cond_map = {"eq": Opcode.B_EQ, "ne": Opcode.B_NE,
                    "lt": Opcode.B_LT, "ge": Opcode.B_GE}
        if cond not in cond_map:
            raise ValueError("unsupported branch condition %r" % cond)
        return ops.Instruction(cond_map[cond], target=operands[0])

    if mnemonic == "mov":
        if len(operands) != 2:
            raise ValueError("mov takes two operands")
        rd = parse_reg(operands[0])
        if operands[1].startswith("#"):
            return ops.mov_imm(rd, _parse_imm(operands[1]))
        return ops.mov_reg(rd, parse_reg(operands[1]))

    if mnemonic in ("add", "sub", "and", "orr", "eor", "mul", "lsl", "lsr"):
        opcode = Opcode[mnemonic.upper()]
        if len(operands) != 3:
            raise ValueError("%s takes three operands" % mnemonic)
        rd = parse_reg(operands[0])
        rn = parse_reg(operands[1])
        if operands[2].startswith("#"):
            return ops.Instruction(opcode, dst=(rd,), src=(rn,),
                                   imm=_parse_imm(operands[2]))
        return ops.Instruction(opcode, dst=(rd,), src=(rn, parse_reg(operands[2])))

    if mnemonic == "cmp":
        if len(operands) != 2:
            raise ValueError("cmp takes two operands")
        rn = parse_reg(operands[0])
        if operands[1].startswith("#"):
            return ops.cmp(rn, imm=_parse_imm(operands[1]))
        return ops.cmp(rn, parse_reg(operands[1]))

    if mnemonic == "ldr":
        keys = _parse_edk(operands[0]) if operands else None
        if keys is not None:
            operands = operands[1:]
        if len(operands) != 2:
            raise ValueError("ldr takes a register and a memory operand")
        rd = parse_reg(operands[0])
        rn, offset = _parse_mem(operands[1])
        if keys is not None:
            return ops.ldr_ede(rd, rn, keys[0], keys[1], offset)
        return ops.ldr(rd, rn, offset)

    if mnemonic == "str":
        keys = _parse_edk(operands[0]) if operands else None
        if keys is not None:
            operands = operands[1:]
        if len(operands) != 2:
            raise ValueError("str takes a register and a memory operand")
        rs = parse_reg(operands[0])
        rn, offset = _parse_mem(operands[1])
        if keys is not None:
            return ops.store_ede(rs, rn, keys[0], keys[1], offset)
        return ops.store(rs, rn, offset)

    if mnemonic == "stp":
        keys = _parse_edk(operands[0]) if operands else None
        if keys is not None:
            operands = operands[1:]
        if len(operands) != 3:
            raise ValueError("stp takes two registers and a memory operand")
        rs1 = parse_reg(operands[0])
        rs2 = parse_reg(operands[1])
        rn, offset = _parse_mem(operands[2])
        if keys is not None:
            return ops.stp_ede(rs1, rs2, rn, keys[0], keys[1], offset)
        return ops.stp(rs1, rs2, rn, offset)

    raise ValueError("unknown mnemonic %r" % mnemonic)


def assemble(source: str) -> Program:
    """Assemble a multi-line source string into a :class:`Program`.

    A comment beginning with ``@`` attaches its text to the instruction on
    that line as a persist tag (``Instruction.comment``), so assembly
    fixtures can carry the ``log:<op>``/``store:<op>``-style tags the
    persist-ordering prover and the consistency checker key on::

        str x1, [x0]      ;@ store:0
    """
    program = Program()
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line, comment = _split_comment(raw_line)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            program.label(label_match.group(1))
            continue
        # Allow "label: inst" on one line.
        if ":" in line and not line.lower().startswith(("ldr", "str", "stp")):
            head, _, rest = line.partition(":")
            if _LABEL_RE.match(head + ":"):
                program.label(head)
                line = rest.strip()
                if not line:
                    continue
        try:
            inst = assemble_line(line)
        except ValueError as exc:
            raise AssemblerError(str(exc), line_number, raw_line) from exc
        if inst is not None:
            if comment and comment.startswith("@") and inst.comment is None:
                inst = dataclasses.replace(inst, comment=comment[1:].strip())
            program.add(inst)
    return program

"""AArch64-style general-purpose register file description.

The reproduction models the 64-bit general-purpose registers ``x0``-``x30``,
the zero register ``xzr`` and the stack pointer ``sp``.  Registers are
represented as small integers so that instruction objects stay lightweight;
this module provides the naming conventions and the pretty-printing and
parsing helpers used by the assembler and disassembler.
"""

from __future__ import annotations

#: Number of architectural general-purpose registers (x0-x30).
NUM_GPRS = 31

#: Encoding of the zero register.  Reads return 0, writes are discarded.
XZR = 31

#: Encoding of the stack pointer.
SP = 32

#: Total number of register encodings (x0-x30, xzr, sp).
NUM_REG_ENCODINGS = 33

#: Registers used to pass arguments in the AArch64 procedure call standard.
ARGUMENT_REGISTERS = tuple(range(0, 8))

#: Callee-saved registers in the AArch64 procedure call standard.
CALLEE_SAVED_REGISTERS = tuple(range(19, 29))

#: The frame pointer (x29) and link register (x30).
FP = 29
LR = 30


def reg_name(index: int) -> str:
    """Return the canonical assembly name for a register encoding.

    >>> reg_name(0)
    'x0'
    >>> reg_name(31)
    'xzr'
    >>> reg_name(32)
    'sp'
    """
    if 0 <= index < NUM_GPRS:
        return "x%d" % index
    if index == XZR:
        return "xzr"
    if index == SP:
        return "sp"
    raise ValueError("invalid register encoding: %r" % (index,))


def parse_reg(name: str) -> int:
    """Parse an assembly register name into its encoding.

    Accepts ``x0``-``x30``, ``xzr`` and ``sp`` (case-insensitive).

    >>> parse_reg('x7')
    7
    >>> parse_reg('XZR')
    31
    """
    text = name.strip().lower()
    if text == "xzr":
        return XZR
    if text == "sp":
        return SP
    if text.startswith("x"):
        try:
            index = int(text[1:])
        except ValueError:
            raise ValueError("invalid register name: %r" % (name,)) from None
        if 0 <= index < NUM_GPRS:
            return index
    raise ValueError("invalid register name: %r" % (name,))


def is_writable(index: int) -> bool:
    """Return whether writes to the register have an architectural effect."""
    return index != XZR

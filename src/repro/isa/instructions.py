"""Instruction objects, including the EDE operand fields.

An :class:`Instruction` is the static form produced by the assembler or by
the trace builders in :mod:`repro.nvmfw`.  It captures the opcode, register
operands, immediate, and — for the EDE variants — the ``EDK_def`` /
``EDK_use`` operands introduced by the paper (Section IV-B).  Following the
paper's notation, EDE instructions print their keys in a parenthesised prefix
``(EDK_def, EDK_use)``, e.g. ``str (0, 1), x3, [x0]``.

For trace-driven timing simulation an instruction may additionally carry a
pre-resolved effective address (``addr``) and access size; the functional
machine in :mod:`repro.isa.machine` resolves these dynamically instead.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.core.edk import ZERO_KEY, validate_edk
from repro.isa import registers
from repro.isa.opcodes import (
    CONDITIONAL_BRANCH_OPCODES,
    Opcode,
    is_barrier,
    is_branch,
    is_ede,
    is_load,
    is_memory,
    is_store,
    is_store_class,
    is_writeback,
)

#: Pseudo-register encoding for the condition flags (NZCV).  Conditional
#: branches read it, CMP writes it; the timing model tracks it in the same
#: scoreboard as the architectural registers.
FLAGS_REG = -1

#: Per-opcode classification, precomputed once and indexed by opcode value:
#: ``(is_load, is_store, is_writeback, is_store_class, is_memory,
#: is_barrier, is_branch, is_ede, enters_iq)``.  The timing model unpacks
#: one entry per dynamic instruction instead of querying the opcode
#: predicate functions; ``enters_iq`` is False for the opcodes that bypass
#: the issue queue (barriers, WAITs, NOP and HALT).
CLASSIFICATION_BY_OPCODE = [None] * (max(Opcode) + 1)
for _op in Opcode:
    CLASSIFICATION_BY_OPCODE[_op] = (
        is_load(_op), is_store(_op), is_writeback(_op), is_store_class(_op),
        is_memory(_op), is_barrier(_op), is_branch(_op), is_ede(_op),
        not (is_barrier(_op) or _op in (
            Opcode.NOP, Opcode.HALT, Opcode.WAIT_KEY, Opcode.WAIT_ALL_KEYS)),
    )
del _op

#: Implicit extra scoreboard reads/writes beyond the encoded operands.
_EXTRA_SRC = {op: (FLAGS_REG,) for op in CONDITIONAL_BRANCH_OPCODES}
_EXTRA_DST = {Opcode.CMP: (FLAGS_REG,), Opcode.BL: (30,)}


@dataclasses.dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    Attributes:
        opcode: The operation performed.
        dst: Destination register encodings (written registers).
        src: Source register encodings (read registers).
        imm: Immediate operand (offset, constant, or branch target label id).
        edk_def: Dependence-producer key (0 = zero key, i.e. unused).
        edk_use: First dependence-consumer key (0 = unused).
        edk_use2: Second consumer key; only meaningful for ``JOIN``.
        addr: Optional pre-resolved effective address for trace-driven runs.
        size: Access size in bytes for memory operations.
        target: Optional symbolic branch target (label name).
        comment: Free-form annotation carried through to the timing model
            (used by the consistency checker to tag persist obligations).
    """

    opcode: Opcode
    dst: Tuple[int, ...] = ()
    src: Tuple[int, ...] = ()
    imm: int = 0
    edk_def: int = ZERO_KEY
    edk_use: int = ZERO_KEY
    edk_use2: int = ZERO_KEY
    addr: Optional[int] = None
    size: int = 8
    target: Optional[str] = None
    comment: Optional[str] = None

    def __post_init__(self) -> None:
        # Precompute the timing model's register views and consumer keys
        # once per static instruction.  Per-opcode classification lives in
        # CLASSIFICATION_BY_OPCODE instead of per-instance attributes: the
        # pipeline unpacks it once per dynamic instruction, so copying nine
        # flags into every one of the hundreds of thousands of trace
        # instructions would only slow the build.  Frozen dataclasses store
        # fields in the instance __dict__, so the precomputed attributes can
        # be installed the same way without tripping the frozen __setattr__.
        opcode = self.opcode
        d = self.__dict__

        edk_def = d["edk_def"]
        edk_use = d["edk_use"]
        edk_use2 = d["edk_use2"]
        if edk_def or edk_use or edk_use2:
            validate_edk(edk_def)
            validate_edk(edk_use)
            validate_edk(edk_use2)
            if not CLASSIFICATION_BY_OPCODE[opcode][7]:
                raise ValueError(
                    "non-EDE opcode %s cannot carry EDK operands" % opcode.name
                )
            if edk_use2 and opcode is not Opcode.JOIN:
                raise ValueError("edk_use2 is only valid on JOIN")
            keys = []
            if edk_use != ZERO_KEY:
                keys.append(edk_use)
            if edk_use2 != ZERO_KEY:
                keys.append(edk_use2)
            d["_consumer_keys"] = tuple(keys)
        else:
            # All-zero keys (the common case) are always valid.
            d["_consumer_keys"] = ()
        if d["size"] not in (1, 2, 4, 8, 16):
            raise ValueError("invalid access size: %r" % (self.size,))

        src = d["src"]
        used = tuple(r for r in src if r != 31) if 31 in src else src
        extra = _EXTRA_SRC.get(opcode)
        d["timing_src_regs"] = used + extra if extra else used
        dst = d["dst"]
        defined = tuple(r for r in dst if r != 31) if 31 in dst else dst
        extra = _EXTRA_DST.get(opcode)
        d["timing_dst_regs"] = defined + extra if extra else defined

    # --- classification helpers -------------------------------------------
    # Backed by CLASSIFICATION_BY_OPCODE; hot pipeline code indexes the
    # table directly rather than going through these properties.

    @property
    def is_load(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][0]

    @property
    def is_store(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][1]

    @property
    def is_writeback(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][2]

    @property
    def is_store_class(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][3]

    @property
    def is_memory(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][4]

    @property
    def is_barrier(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][5]

    @property
    def is_branch(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][6]

    @property
    def is_ede(self) -> bool:
        return CLASSIFICATION_BY_OPCODE[self.opcode][7]

    @property
    def enters_iq(self) -> bool:
        """Whether the instruction occupies an issue-queue slot."""
        return CLASSIFICATION_BY_OPCODE[self.opcode][8]

    @property
    def is_producer(self) -> bool:
        """True when the instruction defines a non-zero EDK (Section IV-A2)."""
        return self.edk_def != ZERO_KEY

    @property
    def is_consumer(self) -> bool:
        """True when the instruction uses a non-zero EDK (Section IV-A3)."""
        return self.edk_use != ZERO_KEY or self.edk_use2 != ZERO_KEY

    def consumer_keys(self) -> Tuple[int, ...]:
        """Non-zero consumer keys, in operand order."""
        return self._consumer_keys

    # --- pretty printing ----------------------------------------------------

    def _edk_prefix(self) -> str:
        if self.opcode is Opcode.JOIN:
            return "(%d, %d, %d)" % (self.edk_def, self.edk_use, self.edk_use2)
        if self.opcode is Opcode.WAIT_KEY:
            return "(%d)" % self.edk_use
        return "(%d, %d)" % (self.edk_def, self.edk_use)

    def mnemonic(self) -> str:
        """Assembly-style rendering, following the paper's notation."""
        op = self.opcode
        name = registers.reg_name
        if op is Opcode.NOP:
            return "nop"
        if op is Opcode.HALT:
            return "halt"
        if op in (Opcode.MOV,):
            if self.src:
                return "mov %s, %s" % (name(self.dst[0]), name(self.src[0]))
            return "mov %s, #%d" % (name(self.dst[0]), self.imm)
        if op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR, Opcode.EOR,
                  Opcode.MUL, Opcode.LSL, Opcode.LSR):
            if len(self.src) == 2:
                return "%s %s, %s, %s" % (
                    op.name.lower(), name(self.dst[0]), name(self.src[0]),
                    name(self.src[1]))
            return "%s %s, %s, #%d" % (
                op.name.lower(), name(self.dst[0]), name(self.src[0]), self.imm)
        if op is Opcode.CMP:
            if len(self.src) == 2:
                return "cmp %s, %s" % (name(self.src[0]), name(self.src[1]))
            return "cmp %s, #%d" % (name(self.src[0]), self.imm)
        if op in (Opcode.B, Opcode.BL):
            return "%s %s" % (op.name.lower(), self.target or hex(self.imm))
        if op in (Opcode.B_EQ, Opcode.B_NE, Opcode.B_LT, Opcode.B_GE):
            cond = op.name.split("_")[1].lower()
            return "b.%s %s" % (cond, self.target or hex(self.imm))
        if op is Opcode.RET:
            return "ret"
        if op is Opcode.LDR:
            return "ldr %s, [%s, #%d]" % (name(self.dst[0]), name(self.src[0]), self.imm)
        if op is Opcode.LDR_EDE:
            return "ldr %s, %s, [%s, #%d]" % (
                self._edk_prefix(), name(self.dst[0]), name(self.src[0]), self.imm)
        if op is Opcode.STR:
            return "str %s, [%s, #%d]" % (name(self.src[0]), name(self.src[1]), self.imm)
        if op is Opcode.STR_EDE:
            return "str %s, %s, [%s, #%d]" % (
                self._edk_prefix(), name(self.src[0]), name(self.src[1]), self.imm)
        if op is Opcode.STP:
            return "stp %s, %s, [%s, #%d]" % (
                name(self.src[0]), name(self.src[1]), name(self.src[2]), self.imm)
        if op is Opcode.STP_EDE:
            return "stp %s, %s, %s, [%s, #%d]" % (
                self._edk_prefix(), name(self.src[0]), name(self.src[1]),
                name(self.src[2]), self.imm)
        if op is Opcode.DC_CVAP:
            return "dc cvap, %s" % name(self.src[0])
        if op is Opcode.DC_CVAP_EDE:
            return "dc cvap %s, %s" % (self._edk_prefix(), name(self.src[0]))
        if op is Opcode.DSB_SY:
            return "dsb sy"
        if op is Opcode.DMB_ST:
            return "dmb st"
        if op is Opcode.DMB_SY:
            return "dmb sy"
        if op is Opcode.JOIN:
            return "join %s" % self._edk_prefix()
        if op is Opcode.WAIT_KEY:
            return "wait_key %s" % self._edk_prefix()
        if op is Opcode.WAIT_ALL_KEYS:
            return "wait_all_keys"
        raise ValueError("unknown opcode: %r" % (op,))

    def __str__(self) -> str:
        text = self.mnemonic()
        if self.comment:
            return "%s ; %s" % (text, self.comment)
        return text


# ---------------------------------------------------------------------------
# Construction helpers.  These keep workload/framework code readable and are
# the supported way to build instructions programmatically.
# ---------------------------------------------------------------------------

def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    return Instruction(Opcode.HALT)


def mov_imm(rd: int, imm: int) -> Instruction:
    return Instruction(Opcode.MOV, dst=(rd,), imm=imm)


def mov_reg(rd: int, rn: int) -> Instruction:
    return Instruction(Opcode.MOV, dst=(rd,), src=(rn,))


def add(rd: int, rn: int, rm: Optional[int] = None, imm: int = 0) -> Instruction:
    if rm is None:
        return Instruction(Opcode.ADD, dst=(rd,), src=(rn,), imm=imm)
    return Instruction(Opcode.ADD, dst=(rd,), src=(rn, rm))


def sub(rd: int, rn: int, rm: Optional[int] = None, imm: int = 0) -> Instruction:
    if rm is None:
        return Instruction(Opcode.SUB, dst=(rd,), src=(rn,), imm=imm)
    return Instruction(Opcode.SUB, dst=(rd,), src=(rn, rm))


def cmp(rn: int, rm: Optional[int] = None, imm: int = 0) -> Instruction:
    if rm is None:
        return Instruction(Opcode.CMP, src=(rn,), imm=imm)
    return Instruction(Opcode.CMP, src=(rn, rm))


def ldr(rd: int, rn: int, offset: int = 0, addr: Optional[int] = None,
        comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.LDR, dst=(rd,), src=(rn,), imm=offset, addr=addr,
                       comment=comment)


def ldr_ede(rd: int, rn: int, edk_def: int, edk_use: int, offset: int = 0,
            addr: Optional[int] = None, comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.LDR_EDE, dst=(rd,), src=(rn,), imm=offset,
                       edk_def=edk_def, edk_use=edk_use, addr=addr, comment=comment)


def store(rs: int, rn: int, offset: int = 0, addr: Optional[int] = None,
          comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.STR, src=(rs, rn), imm=offset, addr=addr,
                       comment=comment)


def store_ede(rs: int, rn: int, edk_def: int, edk_use: int, offset: int = 0,
              addr: Optional[int] = None, comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.STR_EDE, src=(rs, rn), imm=offset,
                       edk_def=edk_def, edk_use=edk_use, addr=addr, comment=comment)


def stp(rs1: int, rs2: int, rn: int, offset: int = 0, addr: Optional[int] = None,
        comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.STP, src=(rs1, rs2, rn), imm=offset, addr=addr,
                       size=16, comment=comment)


def stp_ede(rs1: int, rs2: int, rn: int, edk_def: int, edk_use: int,
            offset: int = 0, addr: Optional[int] = None,
            comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.STP_EDE, src=(rs1, rs2, rn), imm=offset,
                       edk_def=edk_def, edk_use=edk_use, addr=addr, size=16,
                       comment=comment)


def dc_cvap(rn: int, addr: Optional[int] = None,
            comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.DC_CVAP, src=(rn,), addr=addr, size=8, comment=comment)


def dc_cvap_ede(rn: int, edk_def: int, edk_use: int, addr: Optional[int] = None,
                comment: Optional[str] = None) -> Instruction:
    return Instruction(Opcode.DC_CVAP_EDE, src=(rn,), edk_def=edk_def,
                       edk_use=edk_use, addr=addr, size=8, comment=comment)


def dsb_sy() -> Instruction:
    return Instruction(Opcode.DSB_SY)


def dmb_st() -> Instruction:
    return Instruction(Opcode.DMB_ST)


def dmb_sy() -> Instruction:
    return Instruction(Opcode.DMB_SY)


def join(edk_def: int, edk_use1: int, edk_use2: int = ZERO_KEY) -> Instruction:
    return Instruction(Opcode.JOIN, edk_def=edk_def, edk_use=edk_use1,
                       edk_use2=edk_use2)


def wait_key(edk: int) -> Instruction:
    """WAIT_KEY is both a producer and a consumer of the same key."""
    return Instruction(Opcode.WAIT_KEY, edk_def=edk, edk_use=edk)


def wait_all_keys() -> Instruction:
    return Instruction(Opcode.WAIT_ALL_KEYS)


def branch(target: str) -> Instruction:
    return Instruction(Opcode.B, target=target)


def branch_cond(opcode: Opcode, target: str) -> Instruction:
    return Instruction(opcode, target=target)

"""Program container and trace builder.

A :class:`Program` is a static instruction sequence with labels; the
functional machine executes it.  A :class:`TraceBuilder` accumulates a
*dynamic* instruction stream with pre-resolved addresses — the form the
trace-driven timing model consumes.  The NVM framework's code generator
writes into a TraceBuilder while the workload executes functionally.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import Instruction, halt


class Program:
    """A static program: instructions plus label -> index mapping."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    def add(self, inst: Instruction) -> int:
        """Append an instruction; return its index."""
        self._instructions.append(inst)
        return len(self._instructions) - 1

    def label(self, name: str) -> None:
        """Attach ``name`` to the next instruction to be added."""
        if name in self._labels:
            raise ValueError("duplicate label: %r" % (name,))
        self._labels[name] = len(self._instructions)

    def resolve(self, name: str) -> int:
        """Return the instruction index a label points to."""
        try:
            return self._labels[name]
        except KeyError:
            raise KeyError("undefined label: %r" % (name,)) from None

    @property
    def labels(self) -> Dict[str, int]:
        return dict(self._labels)

    @property
    def instructions(self) -> List[Instruction]:
        return list(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def listing(self) -> str:
        """Human-readable assembly listing with labels."""
        by_index: Dict[int, List[str]] = {}
        for name, index in self._labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for index, inst in enumerate(self._instructions):
            for name in by_index.get(index, ()):
                lines.append("%s:" % name)
            lines.append("    %s" % inst)
        for name in by_index.get(len(self._instructions), ()):
            lines.append("%s:" % name)
        return "\n".join(lines)


class TraceBuilder:
    """Accumulates a dynamic instruction trace for the timing model.

    Unlike a :class:`Program`, a trace is already flattened: branches have
    been resolved by the functional execution that produced it, and memory
    instructions carry concrete effective addresses.
    """

    def __init__(self) -> None:
        self._trace: List[Instruction] = []

    def emit(self, inst: Instruction) -> int:
        """Append a dynamic instruction; return its sequence number."""
        if inst.is_memory and inst.addr is None:
            raise ValueError(
                "memory instruction in a trace must carry an address: %s" % inst
            )
        self._trace.append(inst)
        return len(self._trace) - 1

    def emit_all(self, instructions: List[Instruction]) -> None:
        for inst in instructions:
            self.emit(inst)

    def finish(self) -> List[Instruction]:
        """Terminate the trace with HALT and return it."""
        if not self._trace or self._trace[-1].opcode.name != "HALT":
            self._trace.append(halt())
        return self._trace

    @property
    def trace(self) -> List[Instruction]:
        return list(self._trace)

    def __len__(self) -> int:
        return len(self._trace)

    def marker(self) -> int:
        """Current position; useful for delimiting regions of interest."""
        return len(self._trace)


def disassemble(instructions: List[Instruction],
                start: int = 0,
                count: Optional[int] = None) -> str:
    """Render a slice of an instruction sequence as numbered assembly."""
    end = len(instructions) if count is None else min(len(instructions), start + count)
    lines = [
        "%6d: %s" % (index, instructions[index]) for index in range(start, end)
    ]
    return "\n".join(lines)

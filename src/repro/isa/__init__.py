"""The modelled AArch64 subset plus the Execution Dependence Extension.

Public surface:

* :mod:`repro.isa.registers` — register naming/encoding.
* :mod:`repro.isa.opcodes` — the opcode space and classification predicates.
* :mod:`repro.isa.instructions` — :class:`Instruction` and builder helpers.
* :mod:`repro.isa.encoding` — binary encode/decode, including EDK fields.
* :mod:`repro.isa.assembler` — text assembly with the paper's EDE syntax.
* :mod:`repro.isa.program` — :class:`Program` and :class:`TraceBuilder`.
* :mod:`repro.isa.machine` — functional execution producing dynamic traces.
"""

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, TraceBuilder
from repro.isa.assembler import assemble
from repro.isa.machine import Machine, SparseMemory

__all__ = [
    "Instruction",
    "Opcode",
    "Program",
    "TraceBuilder",
    "assemble",
    "Machine",
    "SparseMemory",
]

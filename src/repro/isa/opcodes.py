"""Opcode definitions for the modelled AArch64 subset plus the EDE extension.

The paper adds Execution Dependence Key (EDK) operands to store and cache
writeback instructions and introduces three control instructions (``JOIN``,
``WAIT_KEY`` and ``WAIT_ALL_KEYS``).  This module defines the opcode space of
the simulated machine and the classification predicates the rest of the
system uses (is this a store?  a persist?  a barrier?  an EDE variant?).

Opcode classes
--------------
* Plain AArch64 subset: loads, stores, pairwise stores, ALU ops, moves,
  compares, branches, ``DC CVAP``, ``DSB SY``, ``DMB ST``, ``DMB SY``.
* EDE memory variants (Section IV-B1 of the paper): ``STR_EDE``, ``STP_EDE``,
  ``DC_CVAP_EDE`` and (for the Section VIII future-work evaluation)
  ``LDR_EDE``.
* EDE control instructions (Section IV-B2): ``JOIN``, ``WAIT_KEY``,
  ``WAIT_ALL_KEYS``.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """All opcodes understood by the simulator."""

    NOP = 0

    # --- ALU / data processing -------------------------------------------
    MOV = 1       # mov xd, #imm  or  mov xd, xn
    ADD = 2       # add xd, xn, xm|#imm
    SUB = 3       # sub xd, xn, xm|#imm
    AND = 4
    ORR = 5
    EOR = 6
    MUL = 7
    LSL = 8
    LSR = 9
    CMP = 10      # cmp xn, xm|#imm (sets flags)

    # --- branches ----------------------------------------------------------
    B = 11        # unconditional branch
    B_EQ = 12
    B_NE = 13
    B_LT = 14
    B_GE = 15
    BL = 16       # branch and link (call)
    RET = 17      # return via x30

    # --- memory ------------------------------------------------------------
    LDR = 20      # ldr xd, [xn, #imm]
    STR = 21      # str xs, [xn, #imm]
    STP = 22      # stp xs1, xs2, [xn, #imm]

    # --- cache maintenance / persistence ------------------------------------
    DC_CVAP = 30  # clean by VA to point of persistence

    # --- barriers ------------------------------------------------------------
    DSB_SY = 40   # full data synchronization barrier
    DMB_ST = 41   # store-store barrier (SFENCE-like in the SU configuration)
    DMB_SY = 42   # full data memory barrier

    # --- EDE memory variants (carry EDK_def / EDK_use operands) -------------
    STR_EDE = 50
    STP_EDE = 51
    DC_CVAP_EDE = 52
    LDR_EDE = 53  # Section VIII future-work load variant

    # --- EDE control instructions --------------------------------------------
    JOIN = 60          # JOIN (EDK_def, EDK_use1, EDK_use2)
    WAIT_KEY = 61      # WAIT_KEY (EDK)
    WAIT_ALL_KEYS = 62

    # --- simulator pseudo-op -------------------------------------------------
    HALT = 63


#: Opcodes that read memory.
LOAD_OPCODES = frozenset({Opcode.LDR, Opcode.LDR_EDE})

#: Opcodes that write memory (become visible when leaving the write buffer).
STORE_OPCODES = frozenset({Opcode.STR, Opcode.STP, Opcode.STR_EDE, Opcode.STP_EDE})

#: Opcodes that clean a line to the point of persistence.
WRITEBACK_OPCODES = frozenset({Opcode.DC_CVAP, Opcode.DC_CVAP_EDE})

#: Opcodes handled by the memory pipeline (address generation + access).
MEMORY_OPCODES = LOAD_OPCODES | STORE_OPCODES | WRITEBACK_OPCODES

#: Fence / barrier opcodes.
BARRIER_OPCODES = frozenset({Opcode.DSB_SY, Opcode.DMB_ST, Opcode.DMB_SY})

#: EDE variants of existing memory instructions.
EDE_MEMORY_OPCODES = frozenset(
    {Opcode.STR_EDE, Opcode.STP_EDE, Opcode.DC_CVAP_EDE, Opcode.LDR_EDE}
)

#: EDE control instructions.
EDE_CONTROL_OPCODES = frozenset({Opcode.JOIN, Opcode.WAIT_KEY, Opcode.WAIT_ALL_KEYS})

#: Every opcode that carries EDK operands.
EDE_OPCODES = EDE_MEMORY_OPCODES | EDE_CONTROL_OPCODES

#: Control-flow opcodes.
BRANCH_OPCODES = frozenset(
    {Opcode.B, Opcode.B_EQ, Opcode.B_NE, Opcode.B_LT, Opcode.B_GE, Opcode.BL, Opcode.RET}
)

#: Conditional branches (read the flags set by CMP).
CONDITIONAL_BRANCH_OPCODES = frozenset(
    {Opcode.B_EQ, Opcode.B_NE, Opcode.B_LT, Opcode.B_GE}
)

#: ALU opcodes (single-cycle integer operations except MUL).
ALU_OPCODES = frozenset(
    {
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.ORR,
        Opcode.EOR,
        Opcode.MUL,
        Opcode.LSL,
        Opcode.LSR,
        Opcode.CMP,
    }
)

#: Mapping from an EDE variant back to its plain opcode.
PLAIN_OPCODE_OF_EDE_VARIANT = {
    Opcode.STR_EDE: Opcode.STR,
    Opcode.STP_EDE: Opcode.STP,
    Opcode.DC_CVAP_EDE: Opcode.DC_CVAP,
    Opcode.LDR_EDE: Opcode.LDR,
}

#: Mapping from a plain opcode to its EDE variant.
EDE_VARIANT_OF_PLAIN_OPCODE = {
    plain: ede for ede, plain in PLAIN_OPCODE_OF_EDE_VARIANT.items()
}


def is_load(opcode: Opcode) -> bool:
    return opcode in LOAD_OPCODES


def is_store(opcode: Opcode) -> bool:
    return opcode in STORE_OPCODES


def is_writeback(opcode: Opcode) -> bool:
    return opcode in WRITEBACK_OPCODES


def is_memory(opcode: Opcode) -> bool:
    return opcode in MEMORY_OPCODES


def is_barrier(opcode: Opcode) -> bool:
    return opcode in BARRIER_OPCODES


def is_branch(opcode: Opcode) -> bool:
    return opcode in BRANCH_OPCODES


def is_alu(opcode: Opcode) -> bool:
    return opcode in ALU_OPCODES


def is_ede(opcode: Opcode) -> bool:
    """Return whether the opcode carries EDK operands."""
    return opcode in EDE_OPCODES


def is_ede_control(opcode: Opcode) -> bool:
    return opcode in EDE_CONTROL_OPCODES


def is_store_class(opcode: Opcode) -> bool:
    """Stores, pairwise stores and cacheline writebacks.

    The paper's SU configuration uses ``DMB ST`` to order the *store class*
    (as SFENCE orders stores and CLWBs on x86-64).
    """
    return opcode in STORE_OPCODES or opcode in WRITEBACK_OPCODES

"""Binary encoding of the modelled ISA, including the EDE operand fields.

The paper augments instruction opcodes with a new key-set operand pair
``(EDK_def, EDK_use)`` (plus a second use key for ``JOIN``).  This module
defines a concrete machine encoding for the simulated ISA so that programs
can be serialized, stored and decoded — and so the EDK fields have a precise
bit-level home, as an ISA extension requires.

Format
------
Each instruction occupies one 64-bit base word, optionally followed by one
64-bit immediate-extension word for immediates that do not fit in the base
word's 18-bit signed field (the spiritual analogue of a movz/movk sequence).

Base word layout (bit 63 is the MSB)::

    [63:58] opcode            (6 bits)
    [57:54] EDK_def           (4 bits)
    [53:50] EDK_use           (4 bits)
    [49:46] EDK_use2          (4 bits, JOIN only)
    [45:40] dst register      (6 bits; 0x3F = none)
    [39:34] src register 0    (6 bits; 0x3F = none)
    [33:28] src register 1    (6 bits; 0x3F = none)
    [27:22] src register 2    (6 bits; 0x3F = none)
    [21:19] size code         (log2 of access size in bytes)
    [18]    immediate-extension flag
    [17:0]  signed immediate  (18 bits; branch targets are instruction
                               indices resolved against the program)
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode

_NO_REG = 0x3F
_IMM_BITS = 18
_IMM_MIN = -(1 << (_IMM_BITS - 1))
_IMM_MAX = (1 << (_IMM_BITS - 1)) - 1

_SIZE_CODES = {1: 0, 2: 1, 4: 2, 8: 3, 16: 4}
_SIZES = {code: size for size, code in _SIZE_CODES.items()}


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _encode_reg(reg: Optional[int]) -> int:
    if reg is None:
        return _NO_REG
    if not 0 <= reg < _NO_REG:
        raise EncodingError("register encoding out of range: %r" % (reg,))
    return reg


def _field(tup: Tuple[int, ...], index: int) -> Optional[int]:
    return tup[index] if index < len(tup) else None


def encode_instruction(inst: Instruction,
                       labels: Optional[Dict[str, int]] = None) -> bytes:
    """Encode one instruction into 8 or 16 bytes.

    ``labels`` maps label names to instruction indices; it is required when
    the instruction carries a symbolic branch target.
    """
    if len(inst.dst) > 1 or len(inst.src) > 3:
        raise EncodingError("too many register operands: %s" % (inst,))
    imm = inst.imm
    if inst.target is not None:
        if labels is None or inst.target not in (labels or {}):
            raise EncodingError("unresolved branch target %r" % (inst.target,))
        imm = labels[inst.target]

    extended = not _IMM_MIN <= imm <= _IMM_MAX
    base_imm = 0 if extended else imm & ((1 << _IMM_BITS) - 1)

    word = 0
    word |= (int(inst.opcode) & 0x3F) << 58
    word |= (inst.edk_def & 0xF) << 54
    word |= (inst.edk_use & 0xF) << 50
    word |= (inst.edk_use2 & 0xF) << 46
    word |= _encode_reg(_field(inst.dst, 0)) << 40
    word |= _encode_reg(_field(inst.src, 0)) << 34
    word |= _encode_reg(_field(inst.src, 1)) << 28
    word |= _encode_reg(_field(inst.src, 2)) << 22
    word |= (_SIZE_CODES[inst.size] & 0x7) << 19
    word |= (1 if extended else 0) << 18
    word |= base_imm

    if extended:
        return struct.pack(">Q", word) + struct.pack(">q", imm)
    return struct.pack(">Q", word)


def decode_instruction(data: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction at ``offset``; return (instruction, new offset).

    Metadata fields (``addr``, ``comment``, ``target``) are not part of the
    machine encoding; branch targets come back as immediates (instruction
    indices).
    """
    if offset + 8 > len(data):
        raise EncodingError("truncated instruction stream")
    (word,) = struct.unpack_from(">Q", data, offset)
    offset += 8

    opcode_value = (word >> 58) & 0x3F
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise EncodingError("unknown opcode value %d" % opcode_value) from None

    edk_def = (word >> 54) & 0xF
    edk_use = (word >> 50) & 0xF
    edk_use2 = (word >> 46) & 0xF
    regs = [
        (word >> 40) & 0x3F,
        (word >> 34) & 0x3F,
        (word >> 28) & 0x3F,
        (word >> 22) & 0x3F,
    ]
    size_code = (word >> 19) & 0x7
    if size_code not in _SIZES:
        raise EncodingError("invalid size code %d" % size_code)
    extended = bool((word >> 18) & 1)
    if extended:
        if offset + 8 > len(data):
            raise EncodingError("truncated immediate extension")
        (imm,) = struct.unpack_from(">q", data, offset)
        offset += 8
    else:
        imm = word & ((1 << _IMM_BITS) - 1)
        if imm > _IMM_MAX:
            imm -= 1 << _IMM_BITS

    dst = () if regs[0] == _NO_REG else (regs[0],)
    src = tuple(r for r in regs[1:] if r != _NO_REG)

    inst = Instruction(
        opcode=opcode,
        dst=dst,
        src=src,
        imm=imm,
        edk_def=edk_def,
        edk_use=edk_use,
        edk_use2=edk_use2,
        size=_SIZES[size_code],
    )
    return inst, offset


def encode_program(instructions: List[Instruction],
                   labels: Optional[Dict[str, int]] = None) -> bytes:
    """Encode an instruction sequence into a byte string."""
    return b"".join(encode_instruction(inst, labels) for inst in instructions)


def decode_program(data: bytes) -> List[Instruction]:
    """Decode a byte string produced by :func:`encode_program`."""
    return list(iter_decode(data))


def iter_decode(data: bytes) -> Iterator[Instruction]:
    offset = 0
    while offset < len(data):
        inst, offset = decode_instruction(data, offset)
        yield inst

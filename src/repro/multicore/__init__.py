"""Multi-core EDE simulation: N coherent pipelines over a shared EDM.

The paper's future-work section sketches execution dependences racing
across cores — hazard-pointer reclamation being the canonical example.
This package models that territory on top of the existing single-core
pipeline:

- :mod:`repro.multicore.layout` — per-core NVM log/commit-record carve-outs
  so N persistent frameworks share one memory image without aliasing.
- :mod:`repro.multicore.interleave` — the deterministic seeded build-time
  interleaver (round-robin / weighted) that linearizes per-core functional
  execution.
- :mod:`repro.multicore.build` — shared-memory multi-framework build
  context producing a :class:`~repro.multicore.build.MultiBuiltWorkload`.
- :mod:`repro.multicore.edm_bus` — the shared Execution Dependence Map
  bus: cross-core EDK produce/consume visibility and wait-key/wait-all
  draining against remote write buffers.
- :mod:`repro.multicore.coherence` — MESI-lite invalidation coherence over
  cache lines (remote-dirty demotion on load, remote invalidation on
  store/clean).
- :mod:`repro.multicore.core` — :class:`~repro.multicore.core.CoherentCore`,
  the per-core pipeline subclass wired to the bus.
- :mod:`repro.multicore.system` — the lockstep driver: one global clock,
  every core stepped per cycle in core-id order, deterministic
  fast-forward over idle gaps.

Determinism is the contract: a (seed, core count) pair yields bit-identical
stats/visibility/persist-log digests across repeated runs, and N=1 reduces
bit-identically to the single-core pipeline.

Submodules are imported explicitly (not re-exported here) to keep the
package import-cycle-free with the harness.
"""

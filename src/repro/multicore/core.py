"""Per-core pipeline wired to the shared-EDM bus.

:class:`CoherentCore` is an :class:`~repro.pipeline.core.OutOfOrderCore`
that additionally

- *publishes* its EDE producers to the :class:`SharedEdmBus` at dispatch,
- picks up remote-dependence tokens for consumed keys whose globally
  latest producer is in flight on another core (enforced at issue — for
  the WB policy this is conservative relative to the local srcID CAM,
  which cannot hold cross-core identifiers, and strictly safe), and
- gates ``WAIT_KEY``/``WAIT_ALL_KEYS`` retirement on remote write-buffer
  draining via the bus's ticket watermark.

It must be driven through :meth:`OutOfOrderCore.step_cycle` by the
lockstep driver in :mod:`repro.multicore.system`: the fused replay loop
inlines the stage methods overridden here (and ``run()``'s legacy loop
owns the clock), so :meth:`run` refuses to execute.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.opcodes import Opcode
from repro.multicore.edm_bus import SharedEdmBus, remote_token
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.dyninst import (
    DynInst,
    RETIRE_WAIT_ALL,
    RETIRE_WAIT_KEY,
)
from repro.pipeline.stats import PipelineStats


class CoherentCore(OutOfOrderCore):
    """One core of an N-core shared-EDM machine."""

    def __init__(self, core_id: int, bus: SharedEdmBus, trace, hierarchy,
                 policy, params) -> None:
        # replay=False: this core is stepped stage by stage; the fast path
        # would silently skip the overrides below.
        super().__init__(trace, hierarchy, policy, params, replay=False)
        self.core_id = core_id
        self.bus = bus
        #: WAIT seq -> bus ticket watermark captured at dispatch.  Only
        #: producers published before the watermark are drained, which
        #: keeps the cross-core blocking relation acyclic.
        self._wait_watermarks: Dict[int, int] = {}
        self.on_complete = self._notify_bus

    # -- bus plumbing ---------------------------------------------------

    def _notify_bus(self, dyn: DynInst) -> None:
        if dyn.is_ede:
            self.bus.complete(self.core_id, dyn)

    def _dispatch_ede(self, dyn: DynInst) -> None:
        if not dyn.is_ede:
            return
        inst = dyn.inst
        if inst.opcode is Opcode.WAIT_KEY or inst.opcode is Opcode.WAIT_ALL_KEYS:
            super()._dispatch_ede(dyn)
            self._wait_watermarks[dyn.seq] = self.bus.ticket
            return
        # Resolve remote producers against the bus state *before* this
        # instruction's own keys publish (read-then-define, like the local
        # EDM decode).
        remote = ()
        if self.policy.enforces_ede:
            remote = tuple(
                ident
                for ident in (self.bus.remote_producer(self.core_id, key)
                              for key in inst.consumer_keys())
                if ident is not None)
        super()._dispatch_ede(dyn)
        keys = dyn.producer_keys
        if keys:
            self.bus.publish(self.core_id, dyn, tuple(keys))
        for ident in remote:
            deps = dyn.e_deps_outstanding
            if deps is None:
                deps = dyn.e_deps_outstanding = set()
            token = remote_token(*ident)
            if token not in deps:
                deps.add(token)
                self.bus.add_waiter(ident, dyn)

    def _can_retire(self, dyn: DynInst) -> bool:
        retire_class = dyn.retire_class
        if retire_class == RETIRE_WAIT_KEY:
            watermark = self._wait_watermarks.get(dyn.seq, 0)
            if (not self.wb.older_ede_with_key(dyn.inst.edk_use, dyn.seq)
                    and not self.bus.remote_inflight(
                        self.core_id, dyn.inst.edk_use, watermark)):
                self._wait_watermarks.pop(dyn.seq, None)
                return True
            self.stats.retire_stall_wait += 1
            return False
        if retire_class == RETIRE_WAIT_ALL:
            watermark = self._wait_watermarks.get(dyn.seq, 0)
            if (not self.wb.older_ede_any(dyn.seq)
                    and not self.bus.remote_inflight(
                        self.core_id, 0, watermark)):
                self._wait_watermarks.pop(dyn.seq, None)
                return True
            self.stats.retire_stall_wait += 1
            return False
        return super()._can_retire(dyn)

    # -- driver contract ------------------------------------------------

    def run(self, max_cycles: int = 500_000_000,
            no_retire_limit: Optional[int] = None) -> PipelineStats:
        raise RuntimeError(
            "CoherentCore is driven cycle-by-cycle by "
            "repro.multicore.system (shared clock, shared EDM); "
            "run() would simulate it in isolation")

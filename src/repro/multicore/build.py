"""Shared-memory, multi-framework build context for concurrent workloads.

A multi-core workload executes functionally at build time just like a
single-core one, but through N :class:`~repro.nvmfw.framework.
PersistentFramework` instances that share one functional memory image and
one persistent heap, while keeping per-core undo logs, commit records and
log-head words in the :mod:`repro.multicore.layout` carve-outs.  The
result is a :class:`MultiBuiltWorkload`: per-core traces for the lockstep
driver plus merged crash-consistency artifacts over the shared image.

Two invariants make per-core crash recovery sound (see
``consistency/crash_sim.py``):

- **single-writer, line-exclusive persistent cells** — each core's
  persistent data lives on cache lines no other core writes, so a line
  snapshot taken by one core never captures another core's in-flight
  persistent state (contention is expressed through *volatile* DRAM lines
  — locks, flags, hazard slots — which carry no recovery obligations);
- **per-core transaction-id offsets** (multiples of 8), so each core's
  3-bit log epochs and commit-record values decode locally exactly as on
  a single core.

EDK usage is partitioned: each core's emitter rotates through a disjoint
slice of the fifteen architectural keys (minus any workload-reserved
keys), the software discipline a shared EDM demands.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from repro.core.edk import NUM_KEYS
from repro.isa.instructions import Instruction
from repro.multicore import knobs
from repro.multicore.interleave import run_interleaved
from repro.multicore.layout import core_layout, txn_offset
from repro.nvmfw.allocator import PersistentHeap
from repro.nvmfw.framework import BuiltWorkload, PersistentFramework
from repro.nvmfw.layout import NvmLayout


class PartitionedEdkAllocator:
    """Round-robin over one core's share of the fifteen real EDKs."""

    def __init__(self, core_id: int, cores: int,
                 reserved: Sequence[int] = ()) -> None:
        reserved_set = frozenset(reserved)
        self._keys = [key for key in range(1, NUM_KEYS)
                      if key not in reserved_set
                      and (key - 1) % cores == core_id]
        if not self._keys:
            raise ValueError(
                "core %d of %d has no EDKs left after reserving %s"
                % (core_id, cores, sorted(reserved_set)))
        self._next = 0

    def allocate(self) -> int:
        key = self._keys[self._next]
        self._next = (self._next + 1) % len(self._keys)
        return key

    def reset(self) -> None:
        self._next = 0

    @property
    def capacity(self) -> int:
        return len(self._keys)


@dataclasses.dataclass
class MultiBuiltWorkload(BuiltWorkload):
    """A built N-core workload.

    The base fields describe the merged shared-memory image: ``trace`` is
    the concatenated per-core instruction stream (informational — the
    driver runs ``core_traces``), ``obligations``/``line_snapshots`` are
    the union over cores (tags are globally unique via the per-core id
    offsets), and ``committed_states`` is empty — single-core recovery
    validation cannot express concurrent commits; use the per-core lists
    with :func:`repro.consistency.crash_sim.validate_multicore`.
    """

    cores: int = 1
    core_traces: List[List[Instruction]] = dataclasses.field(
        default_factory=list)
    core_layouts: List[NvmLayout] = dataclasses.field(default_factory=list)
    core_committed_states: List[List[Dict[int, int]]] = dataclasses.field(
        default_factory=list)
    core_txn_offsets: List[int] = dataclasses.field(default_factory=list)


class MulticoreBuild:
    """N frameworks over one memory image, plus the build interleaver."""

    def __init__(self, mode: str, cores: int, scale,
                 reserved_keys: Sequence[int] = ()) -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1, got %d" % cores)
        self.mode = mode
        self.cores = cores
        self.scale = scale
        self.layouts = [core_layout(core) for core in range(cores)]
        shared_memory: Dict[int, int] = {}
        shared_heap = PersistentHeap(self.layouts[0])
        self.frameworks: List[PersistentFramework] = []
        for core in range(cores):
            fw = PersistentFramework(
                mode, layout=self.layouts[core],
                edk_allocator=PartitionedEdkAllocator(
                    core, cores, reserved_keys))
            fw.memory = shared_memory
            fw.heap = shared_heap
            offset = txn_offset(core)
            fw._op_id = offset
            fw._txn_id = offset
            self.frameworks.append(fw)
        self.memory = shared_memory

    def freeze_baseline(self) -> None:
        """Snapshot the shared image as every core's persistent baseline.

        Call once, after initialization stores and before the first
        transaction on any core.
        """
        for fw in self.frameworks:
            fw._baseline_memory = dict(self.memory)

    def run(self, streams: Sequence[Sequence[Callable[[], None]]]) -> None:
        """Interleave the per-core unit streams under the env policy/seed."""
        run_interleaved(streams, knobs.interleave_policy(),
                        knobs.interleave_seed(self.scale.seed))

    def finish(self) -> MultiBuiltWorkload:
        """Bundle per-core traces + merged artifacts."""
        offsets = [txn_offset(core) for core in range(self.cores)]
        core_traces = []
        obligations = []
        line_snapshots: Dict[str, Dict[int, int]] = {}
        core_committed: List[List[Dict[int, int]]] = []
        merged_trace: List[Instruction] = []
        ops = 0
        txns = 0
        for core, fw in enumerate(self.frameworks):
            if fw._in_txn:
                raise RuntimeError(
                    "finish() with core %d inside an open transaction" % core)
            trace = fw.builder.finish()
            core_traces.append(trace)
            merged_trace.extend(trace[:-1])  # strip per-core HALT
            obligations.extend(fw.obligations)
            line_snapshots.update(fw.line_snapshots)
            core_committed.append(list(fw.committed_states))
            ops += fw._op_id - offsets[core]
            txns += fw._txn_id - offsets[core]
        merged_trace.append(core_traces[-1][-1])  # one terminal HALT
        baseline = self.frameworks[0]._baseline_memory
        # At N=1 the single-core recovery validator is fully sound, so the
        # merged view carries the committed states; at N>1 it cannot
        # express concurrent commits and validate_multicore must be used.
        merged_committed = list(core_committed[0]) if self.cores == 1 else []
        return MultiBuiltWorkload(
            trace=merged_trace,
            obligations=obligations,
            line_snapshots=line_snapshots,
            committed_states=merged_committed,
            final_memory=dict(self.memory),
            baseline_memory=dict(
                baseline if baseline is not None else self.memory),
            layout=self.layouts[0],
            ops=ops,
            txns=txns,
            cores=self.cores,
            core_traces=core_traces,
            core_layouts=list(self.layouts),
            core_committed_states=core_committed,
            core_txn_offsets=offsets,
        )


def per_core_rng_seed(scale_seed: int, core: int) -> int:
    """Deterministic per-core value-RNG seed, independent of interleaving."""
    return scale_seed + 1000003 * core

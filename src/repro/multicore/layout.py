"""Per-core NVM layout carve-outs for multi-core persistent builds.

Each core runs its own :class:`~repro.nvmfw.framework.PersistentFramework`
over one shared memory image, so the per-framework NVM structures — commit
record, undo-log region, DRAM log-head word — must not alias across cores.
This module carves the default layout's transaction-metadata and log space
into per-core, cache-line-exclusive slices:

- commit records: one 64-byte line each, at ``NVM_BASE + 64 * core``;
- undo logs: 64 KiB each, starting past the 4 KiB metadata region;
- DRAM log-head words: one line each at ``DRAM_SCRATCH_BASE + 64 * core``;
- the persistent heap stays a single shared region past the last log.

Line exclusivity matters for crash recovery: a line snapshot taken by one
core must never capture another core's in-flight persistent state, or the
prefix-cut recovery argument breaks (see ``consistency/crash_sim.py``).
"""

from __future__ import annotations

import dataclasses

from repro.nvmfw.layout import DRAM_SCRATCH_BASE, NVM_BASE, NvmLayout

#: Hard cap on modeled cores.  Eight fits the per-core log carve-outs below
#: and still leaves every core at least one EDK under the 15-key partition.
MAX_CORES = 8

#: Bytes of undo-log space carved out per core.
CORE_LOG_BYTES = 64 << 10

#: Start of the per-core log regions (past the shared tx-metadata region).
_LOGS_BASE = NVM_BASE + (4 << 10)

#: The shared persistent heap starts after the last possible core log.
_HEAP_BASE = _LOGS_BASE + MAX_CORES * CORE_LOG_BYTES

#: Per-core transaction-id (and op-id) offset.  A multiple of 8 so the
#: 3-bit log-entry epoch tag of core ``i``'s local transaction ``k`` equals
#: ``k & 7`` regardless of the offset — recovery's epoch filtering then
#: works per core exactly as it does on a single core.
TXN_ID_STRIDE = 1 << 20


@dataclasses.dataclass(frozen=True)
class CoreNvmLayout(NvmLayout):
    """The default layout re-sliced for one core of an N-core build."""

    core_id: int = 0

    @property
    def log_head_addr(self) -> int:
        return DRAM_SCRATCH_BASE + 64 * self.core_id


def core_layout(core_id: int) -> CoreNvmLayout:
    """Build (and validate) the layout slice for ``core_id``."""
    if not 0 <= core_id < MAX_CORES:
        raise ValueError(
            "core_id %d outside the modeled range 0..%d"
            % (core_id, MAX_CORES - 1))
    layout = CoreNvmLayout(
        tx_meta_base=NVM_BASE + 64 * core_id,
        tx_meta_bytes=64,
        log_base=_LOGS_BASE + core_id * CORE_LOG_BYTES,
        log_bytes=CORE_LOG_BYTES,
        heap_base=_HEAP_BASE,
        core_id=core_id,
    )
    layout.validate()
    return layout


def txn_offset(core_id: int) -> int:
    """The transaction/op-id numbering offset for ``core_id``."""
    return core_id * TXN_ID_STRIDE

"""Environment knobs for the multi-core subsystem.

All knobs are registered in :func:`repro.harness.envutil.describe_env` so
the ``--env`` tables and the registry/grep sync test stay coherent.
Because the interleaver policy/seed shape built traces and the coherence
toggle shapes timing, :func:`multicore_env_signature` folds them into the
trace/result cache keys (see ``harness/result_cache.py``).
"""

from __future__ import annotations

from repro.harness.envutil import env_flag, env_int, env_positive_int, env_str

#: Supported build-time interleaver policies.
POLICIES = ("round_robin", "weighted")


def interleave_policy() -> str:
    """``REPRO_INTERLEAVE``: how per-core build units are linearized."""
    value = env_str("REPRO_INTERLEAVE", "round_robin")
    if value not in POLICIES:
        raise ValueError(
            "REPRO_INTERLEAVE must be one of %s, got %r"
            % ("/".join(POLICIES), value))
    return value


def interleave_seed(scale_seed: int) -> int:
    """The interleaver's RNG seed.

    ``REPRO_INTERLEAVE_SEED`` overrides when non-zero; otherwise the seed
    derives deterministically from the workload scale seed, so the same
    (seed, cores) pair always builds the same interleaving.
    """
    override = env_int("REPRO_INTERLEAVE_SEED", 0, minimum=0)
    if override:
        return override
    return (scale_seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF


def coherence_enabled() -> bool:
    """``REPRO_COHERENCE``: the MESI-lite invalidation model on/off."""
    return env_flag("REPRO_COHERENCE", default=True)


def experiment_cores() -> int:
    """``REPRO_CORES``: core count for the hazard-pointer experiment."""
    return env_positive_int("REPRO_CORES", 2)


def multicore_env_signature() -> str:
    """Cache-key component covering every build/run-shaping multicore knob."""
    return "multicore:%s:%d:%d" % (
        env_str("REPRO_INTERLEAVE", "round_robin"),
        env_int("REPRO_INTERLEAVE_SEED", 0, minimum=0),
        1 if env_flag("REPRO_COHERENCE", default=True) else 0,
    )

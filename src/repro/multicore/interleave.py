"""Deterministic build-time interleaver for multi-core workloads.

Multi-core workloads execute *functionally* at build time, like their
single-core counterparts — but with N per-core instruction streams whose
shared-memory interactions depend on ordering.  Following the operational
style of Zhang et al. (instantaneous instruction execution over an
explicit interleaving), each core's build is expressed as a sequence of
*units* — closures that functionally execute one atomic chunk (a
transaction, or a finer-grained slice for lock/hazard protocols) and emit
its instructions — and this module linearizes them:

- ``round_robin``: cores take strict turns, skipping exhausted streams;
- ``weighted``: a seeded RNG picks the next core, weighted 2:1 toward
  core 0 (the consumer/leader core in the bundled workloads).

The chosen order is a pure function of (policy, seed, unit counts), so a
(seed, core count) pair always builds the same traces — the foundation of
the subsystem's bit-identical determinism contract.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.multicore.knobs import POLICIES


def schedule_order(counts: Sequence[int], policy: str,
                   seed: int) -> List[int]:
    """Return the core-id sequence in which units run.

    ``counts[i]`` is how many units core ``i`` has; the result contains
    core ``i`` exactly ``counts[i]`` times.
    """
    if policy not in POLICIES:
        raise ValueError("unknown interleave policy %r" % policy)
    remaining = list(counts)
    order: List[int] = []
    if policy == "round_robin":
        while any(remaining):
            for core in range(len(remaining)):
                if remaining[core]:
                    remaining[core] -= 1
                    order.append(core)
        return order
    rng = random.Random(seed)
    weights = [2 if core == 0 else 1 for core in range(len(remaining))]
    while True:
        alive = [core for core in range(len(remaining)) if remaining[core]]
        if not alive:
            return order
        core = rng.choices(alive, weights=[weights[c] for c in alive])[0]
        remaining[core] -= 1
        order.append(core)


def run_interleaved(streams: Sequence[Sequence[Callable[[], None]]],
                    policy: str, seed: int) -> List[int]:
    """Execute per-core unit streams in interleaved order; return the order."""
    order = schedule_order([len(s) for s in streams], policy, seed)
    cursors = [0] * len(streams)
    for core in order:
        streams[core][cursors[core]]()
        cursors[core] += 1
    return order

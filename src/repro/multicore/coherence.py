"""MESI-lite invalidation coherence over cache lines.

The single-core :class:`~repro.memory.hierarchy.CacheHierarchy` is private
to its pipeline.  With N cores sharing one physical memory, line copies
must be kept coherent.  Rather than carry full MESI directory state, this
model probes the *ground truth* — the other cores' cache contents — at
each access, which is exactly equivalent for timing purposes:

- **Load**: if a remote core holds the line dirty, that copy is demoted
  (cleaned in place, written back through the shared controller as an
  eviction-class write) and the load pays a demotion penalty.  Clean
  remote copies are free sharers.
- **Store / clean-to-PoP**: remote copies are invalidated level by level
  (dirty ones written back first), and the store pays an invalidation
  penalty when any remote core held the line.

Cores are probed in ascending id order, so every coherence action — and
thus every persist-log record it produces — is deterministic.  The
writebacks are untagged eviction-class controller writes, which the
crash-image reconstruction already skips.  ``REPRO_COHERENCE=0`` turns
the model off (incoherent private caches), which is occasionally useful
to isolate its timing contribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.hierarchy import CacheHierarchy, HierarchyParams

#: Cycles a load pays when a remote dirty copy must be demoted.
DEMOTE_PENALTY = 12

#: Cycles a store pays when remote copies must be invalidated.
INVALIDATE_PENALTY = 8


class CoherenceDirectory:
    """Probes and fixes up the other cores' caches on each access."""

    def __init__(self, enabled: bool = True,
                 demote_penalty: int = DEMOTE_PENALTY,
                 invalidate_penalty: int = INVALIDATE_PENALTY) -> None:
        self.enabled = enabled
        self.demote_penalty = demote_penalty
        self.invalidate_penalty = invalidate_penalty
        self._hierarchies: Dict[int, "CoherentHierarchy"] = {}
        self._order: List[int] = []
        # Observability counters (deterministic, but not part of digests).
        self.demotions = 0
        self.invalidations = 0
        self.dirty_writebacks = 0

    def attach(self, core_id: int, hierarchy: "CoherentHierarchy") -> None:
        if core_id in self._hierarchies:
            raise ValueError("core %d already attached" % core_id)
        self._hierarchies[core_id] = hierarchy
        self._order = sorted(self._hierarchies)

    def on_load(self, core_id: int, addr: int, cycle: int) -> int:
        """Demote remote dirty copies of ``addr``'s line; return penalty."""
        if not self.enabled or len(self._order) < 2:
            return 0
        penalty = 0
        for other_id in self._order:
            if other_id == core_id:
                continue
            other = self._hierarchies[other_id]
            line = other.l1d.line_addr(addr)
            was_dirty = False
            for cache in other._levels:
                if cache.clean(line):
                    was_dirty = True
            if was_dirty:
                self.demotions += 1
                self.dirty_writebacks += 1
                other.controller.write(line, cycle, is_eviction=True)
                penalty = self.demote_penalty
        return penalty

    def on_store(self, core_id: int, addr: int, cycle: int) -> int:
        """Invalidate remote copies of ``addr``'s line; return penalty."""
        if not self.enabled or len(self._order) < 2:
            return 0
        penalty = 0
        for other_id in self._order:
            if other_id == core_id:
                continue
            other = self._hierarchies[other_id]
            line = other.l1d.line_addr(addr)
            present = False
            dirty = False
            for cache in other._levels:
                bit = cache.invalidate(line)
                if bit is not None:
                    present = True
                    dirty = dirty or bit
            if dirty:
                self.dirty_writebacks += 1
                other.controller.write(line, cycle, is_eviction=True)
            if present:
                self.invalidations += 1
                penalty = self.invalidate_penalty
        return penalty


class CoherentHierarchy(CacheHierarchy):
    """A per-core hierarchy that keeps its siblings coherent."""

    def __init__(self, controller, params: Optional[HierarchyParams],
                 directory: CoherenceDirectory, core_id: int) -> None:
        if params is None:
            params = HierarchyParams()
        super().__init__(controller, params)
        self.directory = directory
        self.core_id = core_id
        directory.attach(core_id, self)

    def load(self, addr: int, cycle: int) -> int:
        penalty = self.directory.on_load(self.core_id, addr, cycle)
        return super().load(addr, cycle + penalty)

    def store_commit(self, addr: int, cycle: int) -> int:
        penalty = self.directory.on_store(self.core_id, addr, cycle)
        return super().store_commit(addr, cycle + penalty)

    def clean_to_pop(self, addr: int, cycle: int, *, tag=None,
                     inst_seq=None) -> int:
        # A DC CVAP must persist the line's globally latest content, so
        # remote dirty copies are demoted (load-style) before the clean.
        penalty = self.directory.on_load(self.core_id, addr, cycle)
        return super().clean_to_pop(addr, cycle + penalty, tag=tag,
                                    inst_seq=inst_seq)

"""Lockstep N-core driver: one global clock over N pipelines.

The driver owns the clock.  Every cycle it sets each live core's ``now``
and calls :meth:`~repro.pipeline.core.OutOfOrderCore.step_cycle` in
ascending core-id order — the deterministic total order underneath every
cross-core interaction (bus publishes, coherence probes, controller
traffic).  When no core makes progress, time fast-forwards to the
earliest scheduled event across all live cores, charging the skipped
cycles to each live core's zero-issue histogram bucket exactly as the
single-core loop does.  Both single-core watchdogs (cycle budget,
no-retire limit) apply to the whole machine.

At N=1 the driver runs a plain :class:`~repro.pipeline.core.OutOfOrderCore`
on a plain :class:`~repro.memory.hierarchy.CacheHierarchy` — no bus, no
coherence directory — and its per-cycle schedule is exactly the legacy
loop's, so results are bit-identical to the single-core pipeline (which
is itself pinned bit-identical to the fused replay path).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.memory.controller import MemoryController
from repro.memory.hierarchy import CacheHierarchy
from repro.multicore import knobs
from repro.multicore.coherence import CoherenceDirectory, CoherentHierarchy
from repro.multicore.core import CoherentCore
from repro.multicore.edm_bus import SharedEdmBus
from repro.pipeline.core import OutOfOrderCore, SimulationError
from repro.pipeline.stats import PipelineStats


@dataclasses.dataclass
class MulticoreResult:
    """What one N-core simulation produces for the harness."""

    cores: int
    stats: PipelineStats               # merged machine view
    core_stats: List[PipelineStats]    # per-core, ascending core id
    store_visibility: List[tuple]      # merged, deterministic order
    controller: MemoryController
    coherence: Optional[CoherenceDirectory]
    bus: Optional[SharedEdmBus]


def merge_stats(core_stats: List[PipelineStats]) -> PipelineStats:
    """Machine-level stats: counters summed, cycles = slowest core."""
    merged = PipelineStats()
    merged.cycles = max(s.cycles for s in core_stats)
    for stats in core_stats:
        merged.dispatched += stats.dispatched
        merged.issued += stats.issued
        merged.retired += stats.retired
        merged.squashes += stats.squashes
        merged.retire_stall_wb_full += stats.retire_stall_wb_full
        merged.retire_stall_dsb += stats.retire_stall_dsb
        merged.retire_stall_wait += stats.retire_stall_wait
        merged.dispatch_stall_rob += stats.dispatch_stall_rob
        merged.dispatch_stall_iq += stats.dispatch_stall_iq
        merged.dispatch_stall_lsq += stats.dispatch_stall_lsq
        for issued, count in stats.issue_histogram.items():
            merged.issue_histogram[issued] = (
                merged.issue_histogram.get(issued, 0) + count)
    return merged


def _merge_visibility(cores: List[OutOfOrderCore]) -> List[tuple]:
    """Merged (cycle, seq, tag, addr) records in (cycle, core, seq) order.

    Persist tags are globally unique (per-core op-id offsets), so the
    consistency checker needs no core column; the core id only breaks
    same-cycle ties deterministically.
    """
    tagged = []
    for index, core in enumerate(cores):
        for entry in core.store_visibility:
            tagged.append((entry[0], index, entry[1], entry))
    tagged.sort(key=lambda item: item[:3])
    return [item[3] for item in tagged]


def _warm(hierarchy: CacheHierarchy, built) -> None:
    # Same warming as harness.runner.warm_hierarchy (not imported: the
    # runner imports this module lazily and a top-level import would cycle).
    for line in built.warm_lines(hierarchy.params.line_size):
        for cache in (hierarchy.l3, hierarchy.l2, hierarchy.l1d):
            cache.insert(line)


def drive(cores: List[OutOfOrderCore],
          max_cycles: int = 500_000_000,
          no_retire_limit: Optional[int] = None) -> None:
    """Lockstep the cores under one clock until every core halts."""
    if no_retire_limit is None:
        no_retire_limit = cores[0].params.watchdog_no_retire
    now = 0
    last_retire = 0
    live = [core for core in cores if not core._halted]
    while live:
        if now > max_cycles:
            raise SimulationError("\n".join(
                core._stuck_report(
                    "exceeded the %d-cycle budget" % max_cycles)
                for core in live))
        retired_before = sum(core.stats.retired for core in live)
        progress = 0
        for core in live:
            core.now = now
            progress += core.step_cycle()
        retired = sum(core.stats.retired for core in live) - retired_before
        if retired:
            last_retire = now
        elif no_retire_limit and now - last_retire > no_retire_limit:
            raise SimulationError("\n".join(
                core._stuck_report(
                    "no instruction retired for %d cycles "
                    "(watchdog limit %d)" % (now - last_retire,
                                             no_retire_limit))
                for core in live))
        live = [core for core in live if not core._halted]
        if not live:
            return
        if progress:
            now += 1
            continue
        pending = [core.next_event_cycle() for core in live]
        pending = [cycle for cycle in pending if cycle is not None]
        if not pending:
            raise SimulationError("\n".join(
                core._stuck_report(
                    "machine deadlock (no core progressed, "
                    "nothing scheduled)")
                for core in live))
        target = min(pending)
        skipped = target - now - 1
        if skipped > 0:
            for core in live:
                core.stats.record_issue_cycles(0, skipped)
        now = target


def simulate_built(built, config, params, warm: bool = True,
                   max_cycles: int = 500_000_000) -> MulticoreResult:
    """Simulate a built workload on ``built.cores`` coherent cores."""
    cores_n = getattr(built, "cores", 1)
    controller = MemoryController(
        address_map=params.address_map,
        dram_params=params.dram,
        nvm_params=params.nvm,
    )
    if cores_n == 1:
        hierarchy = CacheHierarchy(controller, params.hierarchy)
        if warm:
            _warm(hierarchy, built)
        core = OutOfOrderCore(built.trace, hierarchy, config.policy,
                              params.core, replay=False)
        drive([core], max_cycles=max_cycles)
        return MulticoreResult(
            cores=1,
            stats=core.stats,
            core_stats=[core.stats],
            store_visibility=list(core.store_visibility),
            controller=controller,
            coherence=None,
            bus=None,
        )
    directory = CoherenceDirectory(enabled=knobs.coherence_enabled())
    bus = SharedEdmBus()
    cores: List[CoherentCore] = []
    for core_id in range(cores_n):
        hierarchy = CoherentHierarchy(controller, params.hierarchy,
                                      directory, core_id)
        if warm:
            _warm(hierarchy, built)
        cores.append(CoherentCore(core_id, bus, built.core_traces[core_id],
                                  hierarchy, config.policy, params.core))
    drive(cores, max_cycles=max_cycles)
    core_stats = [core.stats for core in cores]
    return MulticoreResult(
        cores=cores_n,
        stats=merge_stats(core_stats),
        core_stats=core_stats,
        store_visibility=_merge_visibility(cores),
        controller=controller,
        coherence=directory,
        bus=bus,
    )

"""Shared Execution Dependence Map: cross-core EDK visibility.

The paper's EDM is per-core; its future-work section asks what happens
when execution dependences race across cores.  This bus models the
natural extension — the sixteen architectural EDKs name dependences
machine-wide:

- A producer (non-zero ``edk_def``) *publishes* its key(s) at dispatch.
  The bus remembers the globally latest producer per key and keeps the
  instruction in an in-flight set until it completes on its home core.
- A consumer (non-zero ``edk_use``) whose key's latest producer lives on
  a *remote* core picks up a remote-dependence token, cleared when that
  producer completes.  (Local producers are handled by the core's own
  EDM, exactly as on a single core.)
- ``WAIT_KEY``/``WAIT_ALL_KEYS`` drain *remote write buffers* too: a wait
  cannot retire while a matching remote producer published before it is
  still in flight.

Deadlock freedom comes from the ticket watermark: every publish gets a
monotonically increasing ticket, and a wait only drains producers whose
ticket precedes the wait's dispatch-time watermark.  Any blocking chain
therefore strictly decreases tickets and must be acyclic.

Everything here is plain deterministic bookkeeping — the lockstep driver
steps cores in id order, so publish/complete ordering (and thus every
ticket) is a pure function of (seed, core count).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.edk import NUM_KEYS
from repro.pipeline.dyninst import DynInst

#: A remote-dependence token, kept alongside local producer seqs in a
#: consumer's ``e_deps_outstanding`` set.  Tuples never collide with the
#: local ints, and the ``"r"`` marker keeps them self-describing in
#: stuck-pipeline dumps.
RemoteToken = Tuple[str, int, int]


def remote_token(core_id: int, seq: int) -> RemoteToken:
    return ("r", core_id, seq)


class SharedEdmBus:
    """Cross-core EDK produce/consume bookkeeping for N coherent cores."""

    def __init__(self) -> None:
        #: key -> (core_id, seq) of the globally latest producer.
        self.latest_producer: Dict[int, Tuple[int, int]] = {}
        #: (core_id, seq) pairs of published, not-yet-complete producers.
        self.incomplete: Set[Tuple[int, int]] = set()
        #: (core_id, seq) -> (ticket, producer keys) for in-flight producers.
        self.inflight: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}
        #: (core_id, seq) -> remote consumer DynInsts holding a token on it.
        self.waiters: Dict[Tuple[int, int], List[DynInst]] = {}
        #: Monotonic publish counter (the wait watermark source).
        self.ticket = 0
        #: Total cross-core consumer links created (observability).
        self.remote_links = 0

    def publish(self, core_id: int, dyn: DynInst,
                keys: Tuple[int, ...]) -> None:
        """Record ``dyn`` (dispatching on ``core_id``) producing ``keys``."""
        ident = (core_id, dyn.seq)
        self.ticket += 1
        self.incomplete.add(ident)
        self.inflight[ident] = (self.ticket, keys)
        for key in keys:
            self.latest_producer[key] = ident

    def remote_producer(self, core_id: int, key: int):
        """The in-flight producer of ``key`` on another core, if any."""
        ident = self.latest_producer.get(key)
        if ident is None or ident[0] == core_id:
            return None
        if ident not in self.incomplete:
            return None
        return ident

    def add_waiter(self, ident: Tuple[int, int], dyn: DynInst) -> None:
        """Register ``dyn`` as holding a remote token on producer ``ident``."""
        self.waiters.setdefault(ident, []).append(dyn)
        self.remote_links += 1

    def complete(self, core_id: int, dyn: DynInst) -> None:
        """A published producer completed on its home core."""
        ident = (core_id, dyn.seq)
        if ident not in self.incomplete:
            return
        self.incomplete.discard(ident)
        self.inflight.pop(ident, None)
        token = remote_token(core_id, dyn.seq)
        for waiter in self.waiters.pop(ident, ()):
            deps = waiter.e_deps_outstanding
            if deps is not None:
                deps.discard(token)

    def remote_inflight(self, core_id: int, key: int,
                        watermark: int) -> bool:
        """Any remote producer of ``key`` (0 = any key) still in flight,
        published before ``watermark``?"""
        for (owner, _seq), (ticket, keys) in self.inflight.items():
            if owner == core_id or ticket > watermark:
                continue
            if key == 0 or key in keys:
                return True
        return False


#: All fifteen real keys — what a WAIT_ALL_KEYS drains.
ALL_REAL_KEYS = tuple(range(1, NUM_KEYS))

"""Smoke test: every example under ``examples/`` runs to completion.

Examples are the first thing a reader tries; they must not rot.  Each one
is executed as a real subprocess (``python examples/<name>.py``) the way
the README shows, at a tiny scale where one accepts arguments, with the
caches pointed at a temp directory so the suite leaves no droppings.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

#: Extra argv per example, for the ones that accept a scale override.
ARGS = {"pmdk_btree.py": ["4", "2"]}


def test_every_example_is_covered():
    assert EXAMPLES, "examples/ directory is empty or missing"


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)] + ARGS.get(name, []),
        cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
        timeout=480)
    assert completed.returncode == 0, (
        "%s exited %d\nstdout:\n%s\nstderr:\n%s"
        % (name, completed.returncode, completed.stdout, completed.stderr))
    assert completed.stdout.strip(), "%s printed nothing" % name

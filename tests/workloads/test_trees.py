"""Functional correctness of the four persistent data structures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.base import new_framework
from repro.workloads.btree import MAX_KEYS, PersistentBTree
from repro.workloads.ctree import PersistentCritBitTree
from repro.workloads.rbtree import PersistentRedBlackTree
from repro.workloads.rtree import PersistentRadixTree


def in_txn_framework():
    fw = new_framework("none")
    fw.tx_begin()
    return fw


def make_btree(fw):
    tree = PersistentBTree(fw)
    root_ptr = fw.alloc(8)
    fw.write_init(root_ptr, tree.root)
    tree._root_ptr_addr = root_ptr
    return tree


class TestBTree:
    def test_sorted_iteration(self):
        fw = in_txn_framework()
        tree = make_btree(fw)
        keys = random.Random(1).sample(range(1, 10_000), 200)
        for key in keys:
            tree.insert(key, key + 1)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_lookup(self):
        fw = in_txn_framework()
        tree = make_btree(fw)
        for key in (5, 1, 9, 3):
            tree.insert(key, key * 10)
        assert tree.lookup(9) == 90
        assert tree.lookup(4) is None

    def test_update_existing_key(self):
        fw = in_txn_framework()
        tree = make_btree(fw)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert tree.lookup(5) == 2
        assert len(list(tree.items())) == 1

    def test_splits_grow_depth(self):
        fw = in_txn_framework()
        tree = make_btree(fw)
        for key in range(1, 100):
            tree.insert(key, key)
        assert tree.depth() >= 2

    def test_node_key_bounds(self):
        """3-7 keys per node (root exempt from the minimum)."""
        fw = in_txn_framework()
        tree = make_btree(fw)
        for key in range(1, 500):
            tree.insert(key, key)

        def check(addr):
            node = tree._node(addr)
            count = node.peek("count")
            assert count <= MAX_KEYS
            if addr != tree.root:
                assert count >= MAX_KEYS // 2
            if not tree._is_leaf(node):
                for index in range(count + 1):
                    check(node.peek("child[%d]" % index))

        check(tree.root)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=500), max_size=120))
    def test_matches_dict_model(self, keys):
        fw = in_txn_framework()
        tree = make_btree(fw)
        model = {}
        for key in keys:
            tree.insert(key, key * 3)
            model[key] = key * 3
        assert dict(tree.items()) == model


class TestCritBit:
    def test_sorted_by_bits(self):
        fw = in_txn_framework()
        tree = PersistentCritBitTree(fw, fw.alloc(8))
        keys = random.Random(2).sample(range(1, 10_000), 200)
        for key in keys:
            tree.insert(key, key + 1)
        assert sorted(k for k, _ in tree.items()) == sorted(keys)
        # Crit-bit tries over fixed-width integers iterate in key order.
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_lookup_and_update(self):
        fw = in_txn_framework()
        tree = PersistentCritBitTree(fw, fw.alloc(8))
        tree.insert(10, 1)
        tree.insert(10, 2)
        tree.insert(11, 3)
        assert tree.lookup(10) == 2
        assert tree.lookup(11) == 3
        assert tree.lookup(12) is None

    def test_empty_lookup(self):
        fw = in_txn_framework()
        tree = PersistentCritBitTree(fw, fw.alloc(8))
        assert tree.lookup(1) is None

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=1 << 62), max_size=120))
    def test_matches_dict_model(self, keys):
        fw = in_txn_framework()
        tree = PersistentCritBitTree(fw, fw.alloc(8))
        model = {}
        for key in keys:
            tree.insert(key, key & 0xFFFF)
            model[key] = key & 0xFFFF
        assert dict(tree.items()) == model


class TestRedBlack:
    def test_sorted_iteration_and_invariants(self):
        fw = in_txn_framework()
        tree = PersistentRedBlackTree(fw, fw.alloc(8))
        keys = random.Random(3).sample(range(1, 10_000), 300)
        for key in keys:
            tree.insert(key, key + 1)
        assert [k for k, _ in tree.items()] == sorted(keys)
        tree.check_invariants()

    def test_sequential_inserts_stay_balanced(self):
        fw = in_txn_framework()
        tree = PersistentRedBlackTree(fw, fw.alloc(8))
        for key in range(1, 200):
            tree.insert(key, key)
        black_height = tree.check_invariants()
        assert black_height <= 10  # log-ish, not a 200-deep list

    def test_update_existing(self):
        fw = in_txn_framework()
        tree = PersistentRedBlackTree(fw, fw.alloc(8))
        tree.insert(7, 1)
        tree.insert(7, 2)
        assert tree.lookup(7) == 2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=400), max_size=120))
    def test_matches_dict_model_with_invariants(self, keys):
        fw = in_txn_framework()
        tree = PersistentRedBlackTree(fw, fw.alloc(8))
        model = {}
        for key in keys:
            tree.insert(key, key * 7)
            model[key] = key * 7
        assert dict(tree.items()) == model
        tree.check_invariants()


class TestRadix:
    def test_insert_lookup(self):
        fw = in_txn_framework()
        tree = PersistentRadixTree(fw)
        for key in (0x01020304, 0x01020305, 0xFFFFFFFF, 1):
            tree.insert(key, key & 0xFFFF)
        assert tree.lookup(0x01020304) == 0x0304
        assert tree.lookup(0x01020306) is None

    def test_zero_value_representable(self):
        fw = in_txn_framework()
        tree = PersistentRadixTree(fw)
        tree.insert(42, 0)
        assert tree.lookup(42) == 0

    def test_key_range_checked(self):
        fw = in_txn_framework()
        tree = PersistentRadixTree(fw)
        with pytest.raises(ValueError):
            tree.insert(1 << 33, 1)

    def test_items_sorted(self):
        fw = in_txn_framework()
        tree = PersistentRadixTree(fw)
        keys = random.Random(4).sample(range(1, 1 << 30), 100)
        for key in keys:
            tree.insert(key, key & 0xFF)
        assert [k for k, _ in tree.items()] == sorted(keys)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    max_size=80))
    def test_matches_dict_model(self, keys):
        fw = in_txn_framework()
        tree = PersistentRadixTree(fw)
        model = {}
        for key in keys:
            tree.insert(key, key % 1000)
            model[key] = key % 1000
        assert dict(tree.items()) == model

"""Tests for the workload builders (Table II plus the hazard kernel)."""

import pytest

from repro.isa.opcodes import Opcode
from repro.nvmfw import codegen
from repro.workloads import Scale, build, workload_names

SMALL = Scale(ops_per_txn=4, txns=2)


class TestRegistry:
    def test_table2_applications_registered(self):
        names = workload_names()
        for app in ("update", "swap", "btree", "ctree", "rbtree", "rtree"):
            assert app in names
        assert "hazard" in names

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build("nope", "dsb", SMALL)


class TestScales:
    def test_total_ops(self):
        assert Scale(ops_per_txn=100, txns=1000).total_ops == 100_000

    def test_paper_scale(self):
        from repro.workloads import PAPER_SCALE
        assert PAPER_SCALE.ops_per_txn == 100
        assert PAPER_SCALE.txns == 1000


class TestBuilders:
    @pytest.mark.parametrize("app", ["update", "swap", "btree", "ctree",
                                     "rbtree", "rtree"])
    def test_builds_for_every_mode(self, app):
        for mode in codegen.ALL_MODES:
            built = build(app, mode, SMALL)
            assert built.trace[-1].opcode is Opcode.HALT
            assert built.txns == SMALL.txns
            assert built.ops >= SMALL.total_ops  # trees add init flush ops

    @pytest.mark.parametrize("app", ["update", "swap", "btree", "ctree",
                                     "rbtree", "rtree"])
    def test_deterministic(self, app):
        first = build(app, "dsb", SMALL)
        second = build(app, "dsb", SMALL)
        assert first.trace == second.trace

    def test_update_obligations_per_op(self):
        built = build("update", "dsb", SMALL)
        log_before = [o for o in built.obligations
                      if o.kind == "log-before-store"]
        assert len(log_before) == SMALL.total_ops

    def test_swap_has_two_writes_per_op(self):
        built = build("swap", "dsb", SMALL)
        log_before = [o for o in built.obligations
                      if o.kind == "log-before-store"]
        assert len(log_before) == 2 * SMALL.total_ops

    def test_fence_counts_differ_by_mode(self):
        dsb = build("update", "dsb", SMALL)
        unsafe = build("update", "none", SMALL)
        dsb_count = sum(1 for i in dsb.trace if i.opcode is Opcode.DSB_SY)
        unsafe_count = sum(1 for i in unsafe.trace
                           if i.opcode is Opcode.DSB_SY)
        assert dsb_count > 0
        assert unsafe_count == 0

    def test_ede_mode_has_ede_instructions(self):
        built = build("update", "ede", SMALL)
        assert any(i.opcode is Opcode.DC_CVAP_EDE for i in built.trace)
        assert any(i.opcode is Opcode.STR_EDE for i in built.trace)
        assert any(i.opcode is Opcode.WAIT_ALL_KEYS for i in built.trace)

    def test_trees_functionally_equal_across_modes(self):
        """Fence mode changes ordering instructions, not results."""
        for app in ("btree", "rbtree"):
            base = build(app, "dsb", SMALL).final_memory
            ede = build(app, "ede", SMALL).final_memory
            # Heap contents identical (log slots differ by fence-free
            # emission order is identical too in our generator).
            assert base == ede


class TestHazardKernel:
    def test_fence_mode_uses_dmb_sy(self):
        built = build("hazard", "dsb", SMALL)
        assert any(i.opcode is Opcode.DMB_SY for i in built.trace)

    def test_ede_mode_uses_load_variant(self):
        built = build("hazard", "ede", SMALL)
        assert any(i.opcode is Opcode.LDR_EDE for i in built.trace)
        assert any(i.opcode is Opcode.STR_EDE for i in built.trace)
        assert not any(i.opcode is Opcode.DMB_SY for i in built.trace)

    def test_unsafe_mode_has_neither(self):
        built = build("hazard", "none", SMALL)
        assert not any(i.opcode is Opcode.DMB_SY for i in built.trace)
        assert not any(i.is_ede for i in built.trace)

    def test_ede_pairs_link(self):
        built = build("hazard", "ede", SMALL)
        trace = built.trace
        for index, inst in enumerate(trace):
            if inst.opcode is Opcode.STR_EDE:
                consumer = trace[index + 1]
                assert consumer.opcode is Opcode.LDR_EDE
                assert consumer.edk_use == inst.edk_def


class TestPublicationKernel:
    def test_fence_mode_uses_dmb_sy(self):
        built = build("publication", "dsb", SMALL)
        assert any(i.opcode is Opcode.DMB_SY for i in built.trace)

    def test_ede_mode_links_last_field_to_publish(self):
        built = build("publication", "ede", SMALL)
        trace = built.trace
        producers = [i for i in trace if i.opcode is Opcode.STR_EDE
                     and i.is_producer]
        consumers = [i for i in trace if i.opcode is Opcode.STR_EDE
                     and i.is_consumer]
        assert len(producers) == len(consumers) == SMALL.total_ops
        for producer, consumer in zip(producers, consumers):
            assert consumer.edk_use == producer.edk_def

    def test_unsafe_mode_unordered(self):
        built = build("publication", "none", SMALL)
        assert not any(i.is_ede or i.is_barrier for i in built.trace)

"""Tests for the functional machine."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.machine import Machine, MachineError, SparseMemory
from repro.isa.opcodes import Opcode


def run(source, memory=None, max_steps=10_000):
    machine = Machine(memory)
    trace = machine.run(assemble(source + "\nhalt\n"), max_steps=max_steps)
    return machine, trace


class TestSparseMemory:
    def test_default_zero(self):
        assert SparseMemory().load(0x1000) == 0

    def test_store_load_roundtrip(self):
        mem = SparseMemory()
        mem.store(0x1000, 0xDEADBEEF)
        assert mem.load(0x1000) == 0xDEADBEEF

    def test_subword_access(self):
        mem = SparseMemory()
        mem.store(0x1000, 0x1122334455667788)
        assert mem.load(0x1000, 1) == 0x88
        assert mem.load(0x1002, 2) == 0x5566
        assert mem.load(0x1004, 4) == 0x11223344

    def test_subword_store_preserves_rest(self):
        mem = SparseMemory()
        mem.store(0x1000, 0x1122334455667788)
        mem.store(0x1000, 0xFF, 1)
        assert mem.load(0x1000) == 0x11223344556677FF

    def test_unaligned_raises(self):
        mem = SparseMemory()
        with pytest.raises(MachineError):
            mem.load(0x1001, 8)
        with pytest.raises(MachineError):
            mem.store(0x1004, 1, 8)


class TestArithmetic:
    def test_mov_add_sub(self):
        machine, _ = run("mov x0, #10\nadd x1, x0, #5\nsub x2, x1, x0")
        assert machine.regs[1] == 15
        assert machine.regs[2] == 5

    def test_logic(self):
        machine, _ = run(
            "mov x0, #12\nmov x1, #10\nand x2, x0, x1\n"
            "orr x3, x0, x1\neor x4, x0, x1")
        assert machine.regs[2] == 12 & 10
        assert machine.regs[3] == 12 | 10
        assert machine.regs[4] == 12 ^ 10

    def test_shifts_and_mul(self):
        machine, _ = run("mov x0, #3\nlsl x1, x0, #4\nlsr x2, x1, #2\n"
                         "mul x3, x0, x1")
        assert machine.regs[1] == 48
        assert machine.regs[2] == 12
        assert machine.regs[3] == 144

    def test_wraparound_64bit(self):
        machine, _ = run("mov x0, #0\nsub x1, x0, #1")
        assert machine.regs[1] == (1 << 64) - 1

    def test_xzr_reads_zero_and_discards_writes(self):
        machine, _ = run("mov x0, #7\nadd xzr, x0, #1\nadd x1, xzr, #0")
        assert machine.regs[1] == 0


class TestMemoryOps:
    def test_str_ldr(self):
        machine, trace = run("mov x0, #4096\nmov x1, #99\nstr x1, [x0]\n"
                             "ldr x2, [x0]")
        assert machine.regs[2] == 99
        assert trace[2].addr == 4096

    def test_stp_writes_two_words(self):
        machine, _ = run("mov x0, #4096\nmov x1, #1\nmov x2, #2\n"
                         "stp x1, x2, [x0]\nldr x3, [x0]\nldr x4, [x0, #8]")
        assert machine.regs[3] == 1
        assert machine.regs[4] == 2

    def test_offsets(self):
        machine, _ = run("mov x0, #4096\nmov x1, #5\nstr x1, [x0, #24]\n"
                         "ldr x2, [x0, #24]")
        assert machine.regs[2] == 5

    def test_cvap_and_barriers_traced_without_effect(self):
        machine, trace = run("mov x0, #4096\ndc cvap, x0\ndsb sy\ndmb st")
        opcodes = [inst.opcode for inst in trace]
        assert Opcode.DC_CVAP in opcodes
        assert Opcode.DSB_SY in opcodes
        assert trace[1].addr == 4096


class TestControlFlow:
    def test_loop(self):
        machine, trace = run("""
            mov x0, #0
        loop:
            add x0, x0, #1
            cmp x0, #5
            b.ne loop
        """)
        assert machine.regs[0] == 5
        # 1 mov + 5 * (add, cmp, b.ne)
        assert len(trace) == 1 + 15 + 1

    def test_b_ge_and_b_lt(self):
        machine, _ = run("""
            mov x0, #3
            cmp x0, #5
            b.lt less
            mov x1, #111
            b done
        less:
            mov x1, #222
        done:
            nop
        """)
        assert machine.regs[1] == 222

    def test_call_and_return(self):
        machine, _ = run("""
            mov x0, #1
            bl callee
            add x2, x0, #100
            b finish
        callee:
            add x0, x0, #10
            ret
        finish:
            nop
        """)
        assert machine.regs[0] == 11
        assert machine.regs[2] == 111

    def test_runaway_detection(self):
        with pytest.raises(MachineError):
            run("loop:\nb loop", max_steps=100)

    def test_trace_resolves_dynamic_addresses(self):
        _, trace = run("""
            mov x0, #4096
            mov x2, #0
        loop:
            str x2, [x0]
            add x0, x0, #8
            add x2, x2, #1
            cmp x2, #3
            b.ne loop
        """)
        store_addrs = [i.addr for i in trace if i.opcode is Opcode.STR]
        assert store_addrs == [4096, 4104, 4112]


class TestEdeTransparency:
    def test_ede_variants_execute_like_plain(self):
        machine, trace = run("""
            mov x0, #4096
            mov x3, #77
            dc cvap (1, 0), x0
            str (0, 1), x3, [x0]
            ldr x4, [x0]
            join (2, 1, 0)
            wait_key (2)
            wait_all_keys
        """)
        assert machine.regs[4] == 77
        assert any(i.opcode is Opcode.JOIN for i in trace)


class TestHypothesisAlu:
    @given(st.integers(0, (1 << 63) - 1), st.integers(0, (1 << 16) - 1))
    def test_add_matches_python(self, a, b):
        machine = Machine()
        machine.regs[0] = a
        _ = machine.run(assemble("add x1, x0, #%d\nhalt" % b))
        assert machine.regs[1] == (a + b) & ((1 << 64) - 1)

    @given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1))
    def test_cmp_flags_match_subtraction(self, a, b):
        machine = Machine()
        machine.regs[0] = a
        machine.regs[1] = b
        machine.run(assemble("cmp x0, x1\nhalt"))
        result = (a - b) & ((1 << 64) - 1)
        assert machine.flags.zero == (result == 0)
        assert machine.flags.negative == bool(result >> 63)

"""Tests for Program, TraceBuilder and disassembly."""

import pytest

from repro.isa import instructions as ops
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, TraceBuilder, disassemble


class TestProgram:
    def test_add_returns_index(self):
        program = Program()
        assert program.add(ops.nop()) == 0
        assert program.add(ops.halt()) == 1
        assert len(program) == 2

    def test_label_points_to_next_instruction(self):
        program = Program()
        program.add(ops.nop())
        program.label("here")
        program.add(ops.halt())
        assert program.resolve("here") == 1

    def test_trailing_label(self):
        program = Program()
        program.add(ops.nop())
        program.label("end")
        assert program.resolve("end") == 1
        assert "end:" in program.listing()

    def test_iteration_and_indexing(self):
        program = Program()
        program.add(ops.nop())
        program.add(ops.halt())
        assert [i.opcode for i in program] == [Opcode.NOP, Opcode.HALT]
        assert program[1].opcode is Opcode.HALT

    def test_labels_copy_is_isolated(self):
        program = Program()
        program.label("a")
        labels = program.labels
        labels["b"] = 5
        with pytest.raises(KeyError):
            program.resolve("b")


class TestTraceBuilder:
    def test_memory_instruction_requires_address(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError):
            builder.emit(ops.store(1, 0))  # no addr

    def test_finish_appends_halt_once(self):
        builder = TraceBuilder()
        builder.emit(ops.nop())
        trace = builder.finish()
        assert trace[-1].opcode is Opcode.HALT
        assert builder.finish()[-1].opcode is Opcode.HALT
        assert sum(1 for i in builder.trace
                   if i.opcode is Opcode.HALT) == 1

    def test_marker_tracks_position(self):
        builder = TraceBuilder()
        assert builder.marker() == 0
        builder.emit(ops.nop())
        assert builder.marker() == 1

    def test_emit_all(self):
        builder = TraceBuilder()
        builder.emit_all([ops.nop(), ops.mov_imm(1, 2)])
        assert len(builder) == 2

    def test_emit_returns_sequence_number(self):
        builder = TraceBuilder()
        assert builder.emit(ops.nop()) == 0
        assert builder.emit(ops.nop()) == 1


class TestDisassemble:
    def test_numbered_listing(self):
        text = disassemble([ops.nop(), ops.mov_imm(1, 5)])
        lines = text.splitlines()
        assert lines[0].strip().startswith("0:")
        assert "mov x1, #5" in lines[1]

    def test_window(self):
        instructions = [ops.mov_imm(r, r) for r in range(10)]
        text = disassemble(instructions, start=4, count=2)
        assert text.count("\n") == 1
        assert "x4" in text and "x5" in text

    def test_window_clamped_to_length(self):
        text = disassemble([ops.nop()], start=0, count=100)
        assert text.count("\n") == 0

"""Tests for the assembler, including the paper's EDE syntax."""

import pytest

from repro.isa.assembler import AssemblerError, assemble, assemble_line
from repro.isa.opcodes import Opcode


class TestBasicSyntax:
    def test_mov_imm(self):
        inst = assemble_line("mov x1, #42")
        assert inst.opcode is Opcode.MOV and inst.imm == 42

    def test_mov_reg(self):
        inst = assemble_line("mov x1, x2")
        assert inst.src == (2,)

    def test_alu_reg_and_imm(self):
        assert assemble_line("add x1, x2, x3").src == (2, 3)
        assert assemble_line("add x1, x2, #8").imm == 8
        assert assemble_line("mul x1, x2, x3").opcode is Opcode.MUL

    def test_cmp(self):
        assert assemble_line("cmp x1, x2").opcode is Opcode.CMP
        assert assemble_line("cmp x1, #0").imm == 0

    def test_ldr(self):
        inst = assemble_line("ldr x1, [x0]")
        assert inst.opcode is Opcode.LDR and inst.imm == 0
        inst = assemble_line("ldr x1, [x0, #16]")
        assert inst.imm == 16

    def test_str_and_stp(self):
        assert assemble_line("str x3, [x0]").opcode is Opcode.STR
        inst = assemble_line("stp x0, x1, [x2]")
        assert inst.opcode is Opcode.STP and inst.src == (0, 1, 2)

    def test_dc_cvap_with_and_without_comma(self):
        assert assemble_line("dc cvap, x2").opcode is Opcode.DC_CVAP
        assert assemble_line("dc cvap x2").opcode is Opcode.DC_CVAP

    def test_barriers(self):
        assert assemble_line("dsb sy").opcode is Opcode.DSB_SY
        assert assemble_line("dmb st").opcode is Opcode.DMB_ST
        assert assemble_line("dmb sy").opcode is Opcode.DMB_SY

    def test_branches(self):
        assert assemble_line("b loop").target == "loop"
        assert assemble_line("b.ne Loop").opcode is Opcode.B_NE
        assert assemble_line("b.eq a").opcode is Opcode.B_EQ
        assert assemble_line("bl callee").opcode is Opcode.BL
        assert assemble_line("ret").opcode is Opcode.RET

    def test_nop_halt(self):
        assert assemble_line("nop").opcode is Opcode.NOP
        assert assemble_line("halt").opcode is Opcode.HALT

    def test_empty_line(self):
        assert assemble_line("") is None
        assert assemble_line("   ") is None


class TestEdeSyntax:
    def test_paper_figure7_producer(self):
        inst = assemble_line("dc cvap (1,0), x2")
        assert inst.opcode is Opcode.DC_CVAP_EDE
        assert inst.edk_def == 1 and inst.edk_use == 0

    def test_paper_figure7_consumer(self):
        inst = assemble_line("str (0, 1), x3, [x0]")
        assert inst.opcode is Opcode.STR_EDE
        assert inst.edk_def == 0 and inst.edk_use == 1
        assert inst.src == (3, 0)

    def test_stp_ede(self):
        inst = assemble_line("stp (2, 0), x0, x1, [x2]")
        assert inst.opcode is Opcode.STP_EDE and inst.edk_def == 2

    def test_ldr_ede(self):
        inst = assemble_line("ldr (0, 1), x4, [x1]")
        assert inst.opcode is Opcode.LDR_EDE and inst.edk_use == 1

    def test_join(self):
        inst = assemble_line("join (3, 1, 2)")
        assert (inst.edk_def, inst.edk_use, inst.edk_use2) == (3, 1, 2)

    def test_wait_key(self):
        inst = assemble_line("wait_key (5)")
        assert inst.opcode is Opcode.WAIT_KEY
        assert inst.edk_def == inst.edk_use == 5

    def test_wait_all_keys(self):
        assert assemble_line("wait_all_keys").opcode is Opcode.WAIT_ALL_KEYS


class TestPrograms:
    def test_comments_stripped(self):
        program = assemble("mov x0, #1 ; set up\nmov x1, #2 // other\n")
        assert len(program) == 2

    def test_labels(self):
        program = assemble("""
        start:
            mov x0, #0
        loop:
            add x0, x0, #1
            b loop
        """)
        assert program.resolve("start") == 0
        assert program.resolve("loop") == 1

    def test_inline_label(self):
        program = assemble("Loop: ldr x3, [x1]\nb Loop")
        assert program.resolve("Loop") == 0

    def test_duplicate_label_raises(self):
        with pytest.raises(ValueError):
            assemble("a:\nnop\na:\nnop")

    def test_undefined_label_lookup_raises(self):
        program = assemble("nop")
        with pytest.raises(KeyError):
            program.resolve("missing")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("nop\nbogus x1\n")
        assert exc.value.line_number == 2

    def test_figure4_assembles(self):
        """The paper's Figure 4 sequence assembles cleanly."""
        program = assemble("""
            ldr x1, [x0]        ; load original value
            stp x0, x1, [x2]    ; store addr & val
            dc cvap, x2         ; persist slot
            dsb sy              ; wait for slot to persist
            mov x3, #6          ; load new value
            str x3, [x0]        ; store new value
            dc cvap, x0         ; persist new value
        """)
        assert len(program) == 7
        assert program[3].opcode is Opcode.DSB_SY

    def test_figure12_assembles(self):
        """The paper's Figure 12 hazard-pointer announcement."""
        program = assemble("""
        Loop: ldr x3, [x1]      ; load element's location
            str x3, [x2]        ; announce element's location
            dmb sy              ; full fence: wait for announcement
            ldr x4, [x1]        ; load element's location again
            cmp x4, x3          ; compare both locations
            b.ne Loop           ; try again if locations differ
        """)
        assert len(program) == 6
        assert program[2].opcode is Opcode.DMB_SY

    def test_listing_reassembles(self):
        source = """
        top:
            mov x0, #3
            str (0, 1), x3, [x0]
            dc cvap (1, 0), x2
            join (3, 1, 2)
            wait_key (1)
            b top
        """
        program = assemble(source)
        again = assemble(program.listing())
        assert [i.mnemonic() for i in again] == [i.mnemonic() for i in program]

"""Tests for opcode classification."""

from repro.isa import opcodes
from repro.isa.opcodes import Opcode


class TestClassification:
    def test_loads(self):
        assert opcodes.is_load(Opcode.LDR)
        assert opcodes.is_load(Opcode.LDR_EDE)
        assert not opcodes.is_load(Opcode.STR)

    def test_stores(self):
        for op in (Opcode.STR, Opcode.STP, Opcode.STR_EDE, Opcode.STP_EDE):
            assert opcodes.is_store(op)
        assert not opcodes.is_store(Opcode.DC_CVAP)

    def test_writebacks(self):
        assert opcodes.is_writeback(Opcode.DC_CVAP)
        assert opcodes.is_writeback(Opcode.DC_CVAP_EDE)
        assert not opcodes.is_writeback(Opcode.STR)

    def test_store_class_covers_stores_and_writebacks(self):
        for op in (Opcode.STR, Opcode.STP, Opcode.DC_CVAP,
                   Opcode.STR_EDE, Opcode.STP_EDE, Opcode.DC_CVAP_EDE):
            assert opcodes.is_store_class(op)
        assert not opcodes.is_store_class(Opcode.LDR)
        assert not opcodes.is_store_class(Opcode.DSB_SY)

    def test_barriers(self):
        for op in (Opcode.DSB_SY, Opcode.DMB_ST, Opcode.DMB_SY):
            assert opcodes.is_barrier(op)
        assert not opcodes.is_barrier(Opcode.WAIT_ALL_KEYS)

    def test_branches(self):
        for op in (Opcode.B, Opcode.B_EQ, Opcode.B_NE, Opcode.B_LT,
                   Opcode.B_GE, Opcode.BL, Opcode.RET):
            assert opcodes.is_branch(op)

    def test_memory_is_union(self):
        assert opcodes.MEMORY_OPCODES == (
            opcodes.LOAD_OPCODES | opcodes.STORE_OPCODES
            | opcodes.WRITEBACK_OPCODES)


class TestEdeVariants:
    def test_every_ede_memory_opcode_is_ede(self):
        for op in opcodes.EDE_MEMORY_OPCODES:
            assert opcodes.is_ede(op)

    def test_control_instructions_are_ede(self):
        for op in (Opcode.JOIN, Opcode.WAIT_KEY, Opcode.WAIT_ALL_KEYS):
            assert opcodes.is_ede(op)
            assert opcodes.is_ede_control(op)

    def test_plain_opcodes_are_not_ede(self):
        for op in (Opcode.STR, Opcode.LDR, Opcode.DC_CVAP, Opcode.DSB_SY):
            assert not opcodes.is_ede(op)

    def test_variant_mapping_roundtrip(self):
        for ede, plain in opcodes.PLAIN_OPCODE_OF_EDE_VARIANT.items():
            assert opcodes.EDE_VARIANT_OF_PLAIN_OPCODE[plain] is ede

    def test_variant_classification_matches_plain(self):
        for ede, plain in opcodes.PLAIN_OPCODE_OF_EDE_VARIANT.items():
            assert opcodes.is_load(ede) == opcodes.is_load(plain)
            assert opcodes.is_store(ede) == opcodes.is_store(plain)
            assert opcodes.is_writeback(ede) == opcodes.is_writeback(plain)

    def test_opcode_values_unique(self):
        values = [int(op) for op in Opcode]
        assert len(values) == len(set(values))

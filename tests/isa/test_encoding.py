"""Tests for the binary encoding, including hypothesis round-trips."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.isa import instructions as ops
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode


def _strip_metadata(inst: Instruction) -> Instruction:
    return dataclasses.replace(inst, addr=None, comment=None, target=None)


def roundtrip(inst: Instruction, labels=None) -> Instruction:
    data = encode_instruction(inst, labels)
    decoded, offset = decode_instruction(data)
    assert offset == len(data)
    return decoded


SAMPLES = [
    ops.nop(),
    ops.halt(),
    ops.mov_imm(3, 42),
    ops.mov_reg(1, 2),
    ops.add(1, 2, 3),
    ops.add(1, 2, imm=-8),
    ops.cmp(4, imm=100),
    ops.ldr(1, 0, offset=16),
    ops.store(3, 0, offset=-16),
    ops.stp(1, 2, 0),
    ops.dc_cvap(2),
    ops.dsb_sy(),
    ops.dmb_st(),
    ops.dmb_sy(),
    ops.store_ede(3, 0, edk_def=0, edk_use=1),
    ops.stp_ede(1, 2, 0, edk_def=5, edk_use=7),
    ops.dc_cvap_ede(2, edk_def=15, edk_use=0),
    ops.ldr_ede(4, 5, edk_def=0, edk_use=9),
    ops.join(3, 1, 2),
    ops.wait_key(8),
    ops.wait_all_keys(),
]


class TestRoundTrip:
    @pytest.mark.parametrize("inst", SAMPLES, ids=lambda i: i.mnemonic())
    def test_sample_roundtrip(self, inst):
        assert roundtrip(inst) == _strip_metadata(inst)

    def test_metadata_not_encoded(self):
        inst = ops.store(1, 0, addr=4096, comment="tagged")
        decoded = roundtrip(inst)
        assert decoded.addr is None
        assert decoded.comment is None

    def test_small_immediate_is_8_bytes(self):
        assert len(encode_instruction(ops.mov_imm(0, 1000))) == 8

    def test_large_immediate_uses_extension_word(self):
        inst = ops.mov_imm(0, 2 << 30)
        data = encode_instruction(inst)
        assert len(data) == 16
        assert roundtrip(inst).imm == 2 << 30

    def test_negative_immediates(self):
        assert roundtrip(ops.mov_imm(0, -1)).imm == -1
        assert roundtrip(ops.mov_imm(0, -(1 << 40))).imm == -(1 << 40)

    def test_branch_target_resolved_through_labels(self):
        inst = ops.branch("loop")
        decoded = roundtrip(inst, labels={"loop": 7})
        assert decoded.imm == 7
        assert decoded.opcode is Opcode.B

    def test_unresolved_target_raises(self):
        with pytest.raises(EncodingError):
            encode_instruction(ops.branch("nowhere"))


class TestErrors:
    def test_truncated_stream(self):
        data = encode_instruction(ops.nop())
        with pytest.raises(EncodingError):
            decode_instruction(data[:4])

    def test_truncated_extension(self):
        data = encode_instruction(ops.mov_imm(0, 1 << 40))
        with pytest.raises(EncodingError):
            decode_instruction(data[:8] + b"")
        # exactly the base word: extension flag set but no second word
        with pytest.raises(EncodingError):
            decode_instruction(data[:8])

    def test_unknown_opcode(self):
        word = (59 << 58) | (0x3F << 40) | (0x3F << 34) | (0x3F << 28) | (0x3F << 22)
        import struct
        with pytest.raises(EncodingError):
            decode_instruction(struct.pack(">Q", word))


class TestPrograms:
    def test_program_roundtrip(self):
        data = encode_program(SAMPLES)
        decoded = decode_program(data)
        assert decoded == [_strip_metadata(i) for i in SAMPLES]

    def test_empty_program(self):
        assert decode_program(b"") == []


@st.composite
def arbitrary_instruction(draw):
    kind = draw(st.sampled_from(["alu", "mem", "ede", "control"]))
    imm = draw(st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1))
    reg = st.integers(min_value=0, max_value=32)
    key = st.integers(min_value=0, max_value=15)
    if kind == "alu":
        return Instruction(Opcode.ADD, dst=(draw(reg),),
                           src=(draw(reg),), imm=imm)
    if kind == "mem":
        return Instruction(Opcode.STR, src=(draw(reg), draw(reg)), imm=imm)
    if kind == "ede":
        return Instruction(Opcode.STR_EDE, src=(draw(reg), draw(reg)),
                           imm=imm, edk_def=draw(key), edk_use=draw(key))
    return ops.join(draw(key), draw(key), draw(key))


class TestPropertyRoundTrip:
    @given(st.lists(arbitrary_instruction(), max_size=30))
    def test_program_roundtrip_random(self, insts):
        decoded = decode_program(encode_program(insts))
        assert decoded == [_strip_metadata(i) for i in insts]

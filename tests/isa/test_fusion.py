"""Superinstruction fusion: bit-identical to the unfused interpreters.

``REPRO_FUSION`` (default on) replaces straight-line handler runs with
codegen'd superinstructions (:func:`repro.isa.machine.compile_program_fused`).
Fusion is purely a speed lever: traces, architectural state and faults —
including the exact step at which a ``max_steps`` budget fires — must be
identical to the plain threaded-code path and the reference interpreter.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.machine import (
    Machine,
    MachineError,
    SparseMemory,
    _block_leaders,
    compile_program_fused,
    fusion_enabled,
)
from tests.isa.test_threaded_machine import GOLDEN_PROGRAMS, run_both


@pytest.fixture
def fusion_on(monkeypatch):
    monkeypatch.setenv("REPRO_FUSION", "1")


@pytest.fixture
def fusion_off(monkeypatch):
    monkeypatch.setenv("REPRO_FUSION", "0")


def _run_fused_and_plain(source, max_steps=100_000):
    """Run with fusion on and off; assert both equal the reference."""
    import os

    program = assemble(source)
    ref = Machine()
    ref_trace = ref.run_reference(program, max_steps=max_steps)
    states = []
    for value in ("0", "1"):
        os.environ["REPRO_FUSION"] = value
        try:
            machine = Machine()
            trace = machine.run(program, max_steps=max_steps)
        finally:
            os.environ.pop("REPRO_FUSION", None)
        assert trace == ref_trace
        assert machine.regs == ref.regs
        assert machine.flags == ref.flags
        assert machine.memory.snapshot() == ref.memory.snapshot()
        states.append(machine)
    return states


@pytest.mark.parametrize("name", sorted(GOLDEN_PROGRAMS))
def test_golden_equality_fused(name, fusion_on):
    run_both(GOLDEN_PROGRAMS[name])


@pytest.mark.parametrize("name", sorted(GOLDEN_PROGRAMS))
def test_knob_off_and_on_agree(name):
    _run_fused_and_plain(GOLDEN_PROGRAMS[name])


class TestChunking:
    def test_straight_line_program_is_one_chunk(self):
        program = assemble("""
            mov x0, #1
            add x1, x0, #2
            eor x2, x1, x0
            halt
        """)
        factories, weights = compile_program_fused(program)
        assert factories[0] is not None
        assert weights[0] == 4
        assert factories[1] is factories[2] is factories[3] is None
        assert weights[1:] == [1, 1, 1]

    def test_leaders_break_chunks(self):
        program = assemble("""
            mov x0, #0
        loop:
            add x0, x0, #1
            cmp x0, #3
            b.ne loop
            halt
        """)
        leaders = _block_leaders(program)
        # pc 0 always; pc 1 is the label (and the branch target); pc 4
        # is the fall-through successor of the conditional branch.
        assert leaders == frozenset({0, 1, 4})
        factories, weights = compile_program_fused(program)
        # The loop body (pcs 1-3) fuses; the singleton prologue does not.
        assert factories[0] is None
        assert factories[1] is not None
        assert weights[1] == 3

    def test_singleton_chunks_stay_unfused(self):
        program = assemble("mov x0, #1\nhalt")
        factories, weights = compile_program_fused(program)
        # Two instructions fuse into one chunk of weight 2 — but a
        # 1-instruction remainder would stay on its handler.
        assert weights[0] in (1, 2)
        if factories[0] is None:
            assert weights == [1, 1]

    def test_fused_form_is_memoized(self):
        program = assemble("mov x0, #1\nadd x1, x0, #1\nhalt")
        first = compile_program_fused(program)
        second = compile_program_fused(program)
        assert first[0] is second[0]
        assert first[1] is second[1]


class TestFallbacks:
    def test_non_sparse_memory_runs_unfused_but_identical(self, fusion_on):
        """Memory-touching chunks bind only to a plain SparseMemory; a
        subclass machine gets ``None`` from the factory (the run loop then
        keeps the per-instruction handlers) and stays correct."""

        class ShadowMemory(SparseMemory):
            pass

        program = assemble(GOLDEN_PROGRAMS["tight_loop"])
        factories, weights = compile_program_fused(program)
        fused = [(pc, f) for pc, f in enumerate(factories) if f is not None]
        assert fused, "tight_loop should produce fused chunks"
        plain = Machine()
        shadow = Machine(memory=ShadowMemory())
        # The loop body touches memory: its factory declines the subclass.
        memory_chunks = [f for _, f in fused if f(shadow) is None]
        assert memory_chunks, "no memory-using chunk declined the subclass"
        assert all(f(plain) is not None for _, f in fused)

        ref = Machine()
        ref_trace = ref.run_reference(program)
        machine = Machine(memory=ShadowMemory())
        assert machine.run(program) == ref_trace
        assert machine.regs == ref.regs
        assert machine.memory.snapshot() == ref.memory.snapshot()

    def test_mid_chunk_entry_via_computed_ret(self):
        """A RET into the middle of a fused chunk lands on the retained
        per-instruction handler, not past the whole superinstruction."""
        source = """
            mov x0, #1
            mov x30, #6
            ret
            add x0, x0, #100
            add x0, x0, #1000
            add x0, x0, #10000
            add x0, x0, #3
            halt
        """
        for machine in _run_fused_and_plain(source):
            assert machine.regs[0] == 4  # only pcs 0, 6 executed


class TestFaultParity:
    """Fusion must fault exactly like the unfused interpreters."""

    def _both_raise(self, source, max_steps, fusion):
        import os

        program = assemble(source)
        with pytest.raises(MachineError) as ref_err:
            Machine().run_reference(program, max_steps=max_steps)
        os.environ["REPRO_FUSION"] = fusion
        try:
            with pytest.raises(MachineError) as thr_err:
                Machine().run(program, max_steps=max_steps)
        finally:
            os.environ.pop("REPRO_FUSION", None)
        assert str(thr_err.value) == str(ref_err.value)

    @pytest.mark.parametrize("fusion", ["0", "1"])
    def test_runaway_through_fused_loop(self, fusion):
        # The loop body fuses to weight > 1; the budget must still fire
        # after exactly max_steps retired instructions.
        self._both_raise("""
            mov x0, #0
        loop:
            add x0, x0, #1
            eor x1, x0, x0
            b loop
            halt
        """, max_steps=100, fusion=fusion)

    @pytest.mark.parametrize("fusion", ["0", "1"])
    def test_unaligned_load_mid_chunk(self, fusion):
        self._both_raise(
            "mov x0, #4097\nadd x1, x0, #0\nldr x2, [x0]\nhalt",
            max_steps=100, fusion=fusion)

    @pytest.mark.parametrize("fusion", ["0", "1"])
    def test_unaligned_stp_mid_chunk(self, fusion):
        self._both_raise(
            "mov x0, #4100\nmov x1, #1\nstp x1, x1, [x0]\nhalt",
            max_steps=100, fusion=fusion)

    def test_exact_budget_succeeds(self, fusion_on):
        # 11 retired instructions exactly; a budget of 11 passes, 10 faults.
        source = """
            mov x0, #0
        loop:
            add x0, x0, #1
            cmp x0, #3
            b.ne loop
            halt
        """
        program = assemble(source)
        retired = len(Machine().run_reference(program))
        trace = Machine().run(program, max_steps=retired)
        assert len(trace) == retired
        with pytest.raises(MachineError):
            Machine().run(assemble(source), max_steps=retired - 1)


def test_fusion_enabled_default_and_knob(monkeypatch):
    monkeypatch.delenv("REPRO_FUSION", raising=False)
    assert fusion_enabled() is True
    monkeypatch.setenv("REPRO_FUSION", "0")
    assert fusion_enabled() is False
    monkeypatch.setenv("REPRO_FUSION", "bogus")
    with pytest.raises(ValueError):
        fusion_enabled()

"""Threaded-code interpreter: golden equality against the reference.

`Machine.run` (threaded code, operands bound at decode time) must be
bit-identical to `Machine.run_reference` (the seed per-step dispatch
interpreter) — same trace objects, same architectural state, same faults —
for every supported construct.
"""

import random

import pytest

from repro.isa.assembler import assemble
from repro.isa.machine import Machine, MachineError, compile_program
from repro.isa.opcodes import Opcode


def run_both(source, max_steps=100_000):
    """Run a program through both interpreters; return both machines."""
    program = assemble(source)
    ref = Machine()
    thr = Machine()
    ref_trace = ref.run_reference(program, max_steps=max_steps)
    thr_trace = thr.run(program, max_steps=max_steps)
    assert thr_trace == ref_trace
    assert thr.regs == ref.regs
    assert thr.flags == ref.flags
    assert thr.memory.snapshot() == ref.memory.snapshot()
    return ref, thr


GOLDEN_PROGRAMS = {
    "figure4_undo_log": """
        mov x0, #8519680
        mov x2, #9568256
        ldr x1, [x0]
        stp x0, x1, [x2]
        dc cvap, x2
        dsb sy
        mov x3, #6
        str x3, [x0]
        dc cvap, x0
        halt
    """,
    "figure7_ede": """
        mov x0, #8519680
        mov x2, #9568256
        ldr x1, [x0]
        stp x0, x1, [x2]
        dc cvap (1, 0), x2
        mov x3, #6
        str (0, 1), x3, [x0]
        dc cvap, x0
        halt
    """,
    "tight_loop": """
        mov x0, #4096
        mov x1, #0
    loop:
        str x1, [x0]
        ldr x2, [x0]
        stp x1, x2, [x0, #8]
        add x0, x0, #32
        add x1, x1, #3
        cmp x1, #90
        b.ne loop
        halt
    """,
    "call_ret_chain": """
        mov x0, #1
        bl callee
        add x2, x0, #100
        bl callee
        b finish
    callee:
        add x0, x0, #10
        ret
    finish:
        halt
    """,
    "flags_negative_path": """
        mov x0, #3
        cmp x0, #5
        b.lt less
        mov x1, #111
        b done
    less:
        mov x1, #222
    done:
        cmp x0, #3
        b.eq equal
        mov x3, #1
    equal:
        cmp xzr, #0
        b.ge end
        mov x4, #9
    end:
        halt
    """,
    "xzr_sinks_and_sources": """
        mov x0, #7
        add xzr, x0, #1
        add x1, xzr, #0
        mov xzr, #42
        mov x2, xzr
        mul x3, x0, x0
        eor x3, x3, x0
        lsl x4, x0, #5
        lsr x5, x4, #2
        orr x6, x4, x5
        and x7, x6, x0
        halt
    """,
    "wraparound_and_barriers": """
        mov x0, #0
        sub x1, x0, #1
        dmb st
        dmb sy
        join (2, 1, 0)
        wait_key (2)
        wait_all_keys
        halt
    """,
    "ede_memory_variants": """
        mov x0, #4096
        mov x3, #77
        dc cvap (1, 0), x0
        str (0, 1), x3, [x0]
        ldr (2, 0), x4, [x0]
        stp (0, 2), x3, x4, [x0, #16]
        halt
    """,
}


@pytest.mark.parametrize("name", sorted(GOLDEN_PROGRAMS))
def test_golden_equality(name):
    run_both(GOLDEN_PROGRAMS[name])


def test_random_alu_programs_match():
    rng = random.Random(2021)
    ops = ("add", "sub", "and", "orr", "eor", "mul", "lsl", "lsr")
    for _ in range(10):
        lines = ["mov x%d, #%d" % (r, rng.randrange(1 << 12))
                 for r in range(8)]
        for _ in range(40):
            op = rng.choice(ops)
            rd, rn, rm = (rng.randrange(8) for _ in range(3))
            if op in ("lsl", "lsr") or rng.random() < 0.4:
                lines.append("%s x%d, x%d, #%d"
                             % (op, rd, rn, rng.randrange(64)))
            else:
                lines.append("%s x%d, x%d, x%d" % (op, rd, rn, rm))
        lines.append("halt")
        run_both("\n".join(lines))


def test_branch_edge_cases_match():
    # Every condition on both sides of the zero/negative boundary.
    for lhs, rhs in ((0, 0), (1, 0), (0, 1), (5, 5), (4, 5), (6, 5)):
        for cond in ("eq", "ne", "lt", "ge"):
            run_both("""
                mov x0, #%d
                cmp x0, #%d
                b.%s taken
                mov x1, #1
                b out
            taken:
                mov x1, #2
            out:
                halt
            """ % (lhs, rhs, cond))


def test_subword_accesses_match():
    run_both("""
        mov x0, #4096
        mov x1, #255
        str x1, [x0]
        ldr x2, [x0]
        halt
    """)


class TestFaultParity:
    """Both interpreters fail identically, with the same message."""

    def _both_raise(self, source, max_steps=100):
        program = assemble(source)
        with pytest.raises(MachineError) as ref_err:
            Machine().run_reference(program, max_steps=max_steps)
        with pytest.raises(MachineError) as thr_err:
            Machine().run(program, max_steps=max_steps)
        assert str(thr_err.value) == str(ref_err.value)

    def test_runaway(self):
        self._both_raise("loop:\nb loop\nhalt")

    def test_unaligned_load(self):
        self._both_raise("mov x0, #4097\nldr x1, [x0]\nhalt")

    def test_unaligned_store(self):
        self._both_raise("mov x0, #4097\nmov x1, #1\nstr x1, [x0]\nhalt")

    def test_unaligned_stp(self):
        self._both_raise(
            "mov x0, #4100\nmov x1, #1\nstp x1, x1, [x0]\nhalt")


class TestCompileCache:
    def test_compiled_form_is_memoized(self):
        program = assemble("mov x0, #1\nhalt")
        assert compile_program(program) is compile_program(program)

    def test_growing_the_program_recompiles(self):
        program = assemble("mov x0, #1\nhalt")
        first = compile_program(program)
        machine = Machine()
        machine.run(program)
        assert machine.regs[0] == 1

        from repro.isa.instructions import halt, mov_imm
        program.add(mov_imm(2, 9))
        program.add(halt())
        assert compile_program(program) is not first
        # The reference and threaded paths agree on the grown program too.
        ref, thr = Machine(), Machine()
        assert (thr.run(program) == ref.run_reference(program))

    def test_repeated_runs_accumulate_trace(self):
        program = assemble("mov x0, #1\nhalt")
        ref, thr = Machine(), Machine()
        for _ in range(3):
            ref.run_reference(program)
            thr.run(program)
        assert thr.trace == ref.trace
        assert len(thr.trace) == 6


def test_trace_objects_expose_timing_metadata():
    """Instructions rewritten with resolved addresses keep the precomputed
    timing-model views (the fast copy must not skip them)."""
    program = assemble("mov x0, #4096\nmov x1, #5\nstr x1, [x0]\nhalt")
    trace = Machine().run(program)
    store = next(i for i in trace if i.opcode is Opcode.STR)
    assert store.addr == 4096
    assert store.timing_src_regs == (1, 0)
    assert store.consumer_keys() == ()
    assert store.enters_iq

"""Tests for Instruction construction, validation and printing."""

import pytest

from repro.isa import instructions as ops
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode


class TestValidation:
    def test_edk_out_of_range(self):
        with pytest.raises(ValueError):
            ops.store_ede(1, 2, edk_def=16, edk_use=0, addr=0)
        with pytest.raises(ValueError):
            ops.store_ede(1, 2, edk_def=0, edk_use=-1, addr=0)

    def test_non_ede_opcode_rejects_keys(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STR, src=(1, 2), edk_def=1)
        with pytest.raises(ValueError):
            Instruction(Opcode.LDR, dst=(1,), src=(2,), edk_use=3)

    def test_edk_use2_only_on_join(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STR_EDE, src=(1, 2), edk_use2=3)
        inst = ops.join(1, 2, 3)
        assert inst.edk_use2 == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDR, dst=(1,), src=(2,), size=3)

    def test_frozen(self):
        inst = ops.nop()
        with pytest.raises(Exception):
            inst.opcode = Opcode.HALT


class TestProducerConsumer:
    def test_producer_flag(self):
        assert ops.dc_cvap_ede(1, edk_def=3, edk_use=0, addr=0).is_producer
        assert not ops.dc_cvap_ede(1, edk_def=0, edk_use=3, addr=0).is_producer

    def test_consumer_flag(self):
        assert ops.store_ede(1, 2, edk_def=0, edk_use=5, addr=0).is_consumer
        assert not ops.store_ede(1, 2, edk_def=5, edk_use=0, addr=0).is_consumer

    def test_zero_key_means_unused(self):
        inst = ops.store_ede(1, 2, edk_def=0, edk_use=0, addr=0)
        assert not inst.is_producer
        assert not inst.is_consumer
        assert inst.consumer_keys() == ()

    def test_join_consumer_keys_in_order(self):
        assert ops.join(3, 1, 2).consumer_keys() == (1, 2)
        assert ops.join(3, 0, 2).consumer_keys() == (2,)
        assert ops.join(3, 1, 0).consumer_keys() == (1,)

    def test_wait_key_is_producer_and_consumer(self):
        inst = ops.wait_key(4)
        assert inst.is_producer
        assert inst.is_consumer
        assert inst.edk_def == inst.edk_use == 4


class TestBuilders:
    def test_stp_size_is_16(self):
        assert ops.stp(0, 1, 2, addr=0).size == 16

    def test_store_records_registers(self):
        inst = ops.store(3, 0, addr=64)
        assert inst.src == (3, 0)
        assert inst.dst == ()
        assert inst.addr == 64

    def test_ldr_records_registers(self):
        inst = ops.ldr(1, 0, offset=8, addr=72)
        assert inst.dst == (1,)
        assert inst.src == (0,)
        assert inst.imm == 8

    def test_branch_has_target(self):
        inst = ops.branch("loop")
        assert inst.target == "loop"
        assert inst.is_branch


class TestMnemonics:
    def test_paper_ede_notation(self):
        assert (ops.dc_cvap_ede(2, edk_def=1, edk_use=0, addr=0).mnemonic()
                == "dc cvap (1, 0), x2")
        assert (ops.store_ede(3, 0, edk_def=0, edk_use=1, addr=0).mnemonic()
                == "str (0, 1), x3, [x0, #0]")

    def test_join_notation(self):
        assert ops.join(3, 1, 2).mnemonic() == "join (3, 1, 2)"

    def test_wait_notation(self):
        assert ops.wait_key(1).mnemonic() == "wait_key (1)"
        assert ops.wait_all_keys().mnemonic() == "wait_all_keys"

    def test_barriers(self):
        assert ops.dsb_sy().mnemonic() == "dsb sy"
        assert ops.dmb_st().mnemonic() == "dmb st"
        assert ops.dmb_sy().mnemonic() == "dmb sy"

    def test_comment_appended(self):
        inst = ops.dc_cvap(2, addr=0, comment="log:0")
        assert str(inst).endswith("; log:0")

    def test_every_opcode_prints(self):
        samples = [
            ops.nop(), ops.halt(), ops.mov_imm(1, 5), ops.mov_reg(1, 2),
            ops.add(1, 2, 3), ops.add(1, 2, imm=4), ops.sub(1, 2, 3),
            ops.cmp(1, 2), ops.cmp(1, imm=3),
            ops.ldr(1, 0, addr=0), ops.store(1, 0, addr=0),
            ops.stp(1, 2, 0, addr=0), ops.dc_cvap(0, addr=0),
            ops.dsb_sy(), ops.dmb_st(), ops.dmb_sy(),
            ops.join(1, 2), ops.wait_key(3), ops.wait_all_keys(),
            ops.branch("x"), ops.branch_cond(Opcode.B_NE, "x"),
            ops.ldr_ede(1, 0, 0, 1, addr=0),
            ops.stp_ede(1, 2, 0, 1, 0, addr=0),
        ]
        for inst in samples:
            assert inst.mnemonic()

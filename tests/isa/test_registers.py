"""Tests for register naming and parsing."""

import pytest

from repro.isa import registers


class TestRegNames:
    def test_gpr_names(self):
        assert registers.reg_name(0) == "x0"
        assert registers.reg_name(30) == "x30"

    def test_xzr_name(self):
        assert registers.reg_name(registers.XZR) == "xzr"

    def test_sp_name(self):
        assert registers.reg_name(registers.SP) == "sp"

    def test_invalid_encoding_raises(self):
        with pytest.raises(ValueError):
            registers.reg_name(33)
        with pytest.raises(ValueError):
            registers.reg_name(-1)


class TestParse:
    def test_parse_gprs(self):
        for index in range(registers.NUM_GPRS):
            assert registers.parse_reg("x%d" % index) == index

    def test_parse_case_insensitive(self):
        assert registers.parse_reg("XZR") == registers.XZR
        assert registers.parse_reg("X5") == 5
        assert registers.parse_reg("Sp") == registers.SP

    def test_parse_strips_whitespace(self):
        assert registers.parse_reg("  x7 ") == 7

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            registers.parse_reg("x31")
        with pytest.raises(ValueError):
            registers.parse_reg("x99")

    def test_parse_rejects_garbage(self):
        for bad in ("y0", "", "x", "xa", "w0"):
            with pytest.raises(ValueError):
                registers.parse_reg(bad)

    def test_roundtrip(self):
        for index in list(range(registers.NUM_GPRS)) + [registers.XZR,
                                                        registers.SP]:
            assert registers.parse_reg(registers.reg_name(index)) == index


class TestConventions:
    def test_xzr_not_writable(self):
        assert not registers.is_writable(registers.XZR)
        assert registers.is_writable(0)
        assert registers.is_writable(registers.SP)

    def test_argument_registers(self):
        assert registers.ARGUMENT_REGISTERS == (0, 1, 2, 3, 4, 5, 6, 7)

    def test_callee_saved(self):
        assert 19 in registers.CALLEE_SAVED_REGISTERS
        assert 28 in registers.CALLEE_SAVED_REGISTERS
        assert 0 not in registers.CALLEE_SAVED_REGISTERS

    def test_special_registers(self):
        assert registers.FP == 29
        assert registers.LR == 30

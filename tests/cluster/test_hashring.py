"""Consistent-hash ring unit tests: determinism, stability, balance."""

from repro.cluster.hashring import HashRing


def keys(n):
    return ["job-%d" % i for i in range(n)]


class TestLookup:
    def test_deterministic_across_instances(self):
        """Two rings with the same membership agree on every key —
        the property that lets coordinator, tests and benches compute
        identical placements in different processes."""
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order must not matter
        for key in keys(200):
            assert a.lookup(key) == b.lookup(key)

    def test_empty_ring_returns_none(self):
        assert HashRing().lookup("anything") is None

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.lookup(k) == "only" for k in keys(50))

    def test_membership_helpers(self):
        ring = HashRing(["s0", "s1"])
        assert len(ring) == 2
        assert "s0" in ring and "s2" not in ring
        assert ring.nodes == ("s0", "s1")


class TestStability:
    def test_removal_moves_only_the_removed_nodes_keys(self):
        """Evicting one shard relocates only that shard's keys; every
        other placement is untouched."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.lookup(k) for k in keys(400)}
        ring.remove("s2")
        for key, owner in before.items():
            if owner == "s2":
                assert ring.lookup(key) != "s2"
            else:
                assert ring.lookup(key) == owner

    def test_re_adding_restores_placements(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = {k: ring.lookup(k) for k in keys(300)}
        ring.remove("s1")
        ring.add("s1")
        assert {k: ring.lookup(k) for k in keys(300)} == before

    def test_add_is_idempotent(self):
        ring = HashRing(["s0", "s1"])
        before = {k: ring.lookup(k) for k in keys(100)}
        ring.add("s0")
        assert {k: ring.lookup(k) for k in keys(100)} == before
        assert len(ring) == 2


class TestExclude:
    def test_exclude_falls_to_successor_deterministically(self):
        """Skipping a breaker-open shard yields the same fallback owner
        every time without mutating ring membership."""
        ring = HashRing(["s0", "s1", "s2"])
        key = next(k for k in keys(500) if ring.lookup(k) == "s1")
        fallback = ring.lookup(key, exclude=frozenset({"s1"}))
        assert fallback in ("s0", "s2")
        for _ in range(5):
            assert ring.lookup(key, exclude=frozenset({"s1"})) == fallback
        assert ring.lookup(key) == "s1"  # membership untouched

    def test_exclude_matches_removal(self):
        """Excluding a node routes exactly where removing it would —
        re-routed jobs land on the shard that will own them after
        eviction."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        removed = HashRing(["s0", "s1", "s3"])
        for key in keys(200):
            assert ring.lookup(key, exclude=frozenset({"s2"})) == \
                removed.lookup(key)

    def test_all_excluded_returns_none(self):
        ring = HashRing(["s0", "s1"])
        assert ring.lookup("k", exclude=frozenset({"s0", "s1"})) is None


class TestBalance:
    def test_vnodes_spread_load(self):
        """With 64 vnodes per shard no shard of 4 owns a wildly
        disproportionate share of a uniform keyspace."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        counts = ring.key_counts(keys(2000))
        assert sum(counts.values()) == 2000
        for node, count in counts.items():
            assert 0.10 * 2000 < count < 0.45 * 2000, (node, counts)

"""Coordinator crash-recovery from the write-ahead journal, in-process.

These tests restart :class:`ThreadedCoordinator` instances over the same
journal directory and prove the durable half of the cluster's story:
routes survive a coordinator restart, unfinished jobs are re-driven onto
(possibly brand-new) shards, a torn journal tail from a crash mid-append
is tolerated, and the journal compacts itself under load — all while
the cluster-wide exactly-once guarantee holds.

The subprocess analogue (SIGKILL mid-matrix, restart from the journal)
lives in ``test_journal_e2e.py``.
"""

import pytest

from repro.cluster.coordinator import ThreadedCoordinator
from repro.harness import CONFIGURATIONS
from repro.harness.runner import run_one
from repro.service import JobSpec, ServiceClient, ThreadedServer, result_digest
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=4, txns=2)


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                  seed=SCALE.seed)
    fields.update(overrides)
    return JobSpec(**fields)


def simulations_run(client):
    return sum(value for name, value in client.metric_samples().items()
               if name.startswith("repro_simulations_run_total"))


@pytest.fixture
def shards(tmp_path):
    cache = tmp_path / "cache"
    servers = [ThreadedServer(max_workers=1, cache_dir=cache)
               for _ in range(2)]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.stop()


def _coordinator(shards, journal_dir, **kwargs):
    kwargs.setdefault("probe_interval_s", 0.2)
    kwargs.setdefault("probe_timeout_s", 2.0)
    return ThreadedCoordinator(
        shards=[("127.0.0.1", s.port) for s in shards],
        journal_dir=journal_dir, **kwargs)


class TestRestartRecovery:
    def test_routes_survive_a_clean_restart(self, shards, tmp_path):
        journal_dir = tmp_path / "journal"
        with _coordinator(shards, journal_dir) as first:
            client = ServiceClient(port=first.port, client_id="pytest")
            statuses = [client.submit(spec_for("update", "B", seed=s))
                        for s in (1, 2, 3)]
            finals = client.wait_all(statuses)
            assert all(status["state"] == "done" for status in finals)
            health = client.healthz()
            assert health["journal"]["bytes"] > 0
            assert health["journal"]["records_appended"] >= 9  # 3x(a,r,d)
            shard_of = {s["id"]: s["shard"] for s in finals}

        with _coordinator(shards, journal_dir) as second:
            client = ServiceClient(port=second.port, client_id="pytest")
            health = client.healthz()
            assert health["journal"]["recovered_jobs"] == 3
            routes = second.call(
                lambda: {job_id: (route.shard, route.terminal)
                         for job_id, route
                         in second.coordinator.routes.items()})
            assert set(routes) == set(shard_of)
            for job_id, (shard, terminal) in routes.items():
                assert shard == shard_of[job_id]
                assert terminal
            # Status reads follow the recovered routes.
            for status in statuses:
                assert client.status(status["id"])["state"] == "done"
            # Nothing was re-executed: every job was journaled terminal.
            assert simulations_run(client) == 3

    def test_unfinished_jobs_rerun_on_fresh_shards(self, shards, tmp_path):
        """Kill coordinator AND shards with work still queued: a new
        coordinator over brand-new shard processes re-drives every
        journaled job from its stored submit body, exactly once."""
        journal_dir = tmp_path / "journal"
        cache = tmp_path / "cache2"
        specs = [spec_for("update", "B", seed=100 + s) for s in range(4)]

        with _coordinator(shards, journal_dir) as first:
            client = ServiceClient(port=first.port, client_id="pytest")
            for server in shards:
                server.call(server.scheduler.pause)
            statuses = [client.submit(spec) for spec in specs]
            assert all(s["state"] == "queued" for s in statuses)
        # Coordinator gone; now the shards die too, queued work and all.
        for server in shards:
            server.stop()

        replacements = [ThreadedServer(max_workers=1, cache_dir=cache)
                        for _ in range(2)]
        for server in replacements:
            server.start()
        try:
            with _coordinator(replacements, journal_dir) as second:
                client = ServiceClient(port=second.port, client_id="pytest")
                finals = client.wait_all(statuses, timeout=120)
                assert all(s["state"] == "done" for s in finals)
                samples = client.metric_samples()
                assert samples.get(
                    "repro_cluster_journal_resubmitted_total", 0) == 4
                # Exactly-once across the crash: four unique sims, four runs.
                assert simulations_run(client) == 4
                config = next(c for c in CONFIGURATIONS if c.name == "B")
                for spec, status in zip(specs, statuses):
                    reference = run_one(spec.workload, config, spec.scale)
                    summary = client.result(status["id"])
                    assert summary["digest"] == result_digest(reference)
        finally:
            for server in replacements:
                server.stop()

    def test_torn_journal_tail_is_tolerated(self, shards, tmp_path):
        journal_dir = tmp_path / "journal"
        with _coordinator(shards, journal_dir) as first:
            client = ServiceClient(port=first.port, client_id="pytest")
            status = client.submit(spec_for("swap", "WB"))
            client.wait(status["id"])
        journal_path = journal_dir / "coordinator.journal"
        with open(journal_path, "ab") as handle:
            handle.write(b"RPJ1\x00crash-torn-garbage")

        with _coordinator(shards, journal_dir) as second:
            client = ServiceClient(port=second.port, client_id="pytest")
            assert client.healthz()["journal"]["recovered_jobs"] == 1
            truncated = second.call(
                lambda: second.coordinator.journal.replay_truncated)
            assert truncated > 0
            assert client.status(status["id"])["state"] == "done"


class TestJournalCompaction:
    def test_journal_compacts_under_load(self, shards, tmp_path):
        journal_dir = tmp_path / "journal"
        with _coordinator(shards, journal_dir,
                          journal_compact_bytes=4096) as threaded:
            client = ServiceClient(port=threaded.port, client_id="pytest")
            statuses = [client.submit(spec_for("update", "B", seed=500 + s))
                        for s in range(12)]
            finals = client.wait_all(statuses)
            assert all(s["state"] == "done" for s in finals)
            # Submitting leaves admit records behind; terminal jobs
            # compact to route+done, so the log stays near the bound.
            health = client.healthz()
            assert health["journal"]["compactions"] >= 1
            assert health["journal"]["bytes"] <= 4096 * 2

        with _coordinator(shards, journal_dir) as second:
            client = ServiceClient(port=second.port, client_id="pytest")
            assert client.healthz()["journal"]["recovered_jobs"] == 12
            for status in statuses:
                assert client.status(status["id"])["state"] == "done"

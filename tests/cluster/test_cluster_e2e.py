"""Cluster end-to-end tests: coordinator + in-process shard servers.

The load-bearing guarantees:

* **cluster-wide exactly-once** — the same spec submitted to the
  coordinator concurrently, many times, runs one simulation across the
  whole fleet (consistent-hash affinity + per-shard single-flight);
* **bit-identical** — results served through the coordinator equal
  serial :func:`repro.harness.runner.run_matrix` digests exactly;
* **failure routing** — killing a shard trips its breaker, evicts it
  from the ring and re-routes its queued jobs to the deterministic next
  owner, with the matrix still completing bit-identically;
* **federation** — one ``/metrics`` page carries every shard's series
  under ``shard=`` labels plus the coordinator's own.
"""

import threading

import pytest

from repro.cluster.coordinator import ThreadedCoordinator
from repro.harness import CONFIGURATIONS, run_matrix
from repro.service import JobSpec, ServiceClient, ThreadedServer, result_digest
from repro.service.client import Backpressure
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=4, txns=2)


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                  seed=SCALE.seed)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def shards(tmp_path):
    """Two in-process shard servers over one shared cache directory."""
    cache = tmp_path / "cache"
    servers = [ThreadedServer(max_workers=1, cache_dir=cache)
               for _ in range(2)]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.stop()


@pytest.fixture
def coordinator(shards):
    with ThreadedCoordinator(
            shards=[("127.0.0.1", s.port) for s in shards],
            probe_interval_s=0.2, probe_timeout_s=2.0) as threaded:
        yield threaded


@pytest.fixture
def client(coordinator):
    return ServiceClient(port=coordinator.port, client_id="pytest")


def simulations_run(client):
    """Sum of repro_simulations_run_total across every shard label."""
    return sum(value for name, value in client.metric_samples().items()
               if name.startswith("repro_simulations_run_total"))


class TestExactlyOnce:
    def test_ten_concurrent_duplicates_run_once(self, client, coordinator):
        """Ten threads race the same spec into the coordinator: every
        submission lands on the same shard (hash affinity), the shard
        coalesces them, and exactly one simulation runs cluster-wide."""
        results = []
        errors = []

        def submit():
            local = ServiceClient(port=coordinator.port, client_id="racer")
            try:
                status = local.submit_retrying(spec_for("swap", "WB"))
                results.append(local.wait(status["id"]))
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors
        assert len(results) == 10
        assert len({status["id"] for status in results}) == 1
        assert len({status["shard"] for status in results}) == 1
        assert all(status["state"] == "done" for status in results)
        assert simulations_run(client) == 1

    def test_sequential_duplicate_is_cache_or_registry_hit(self, client):
        first = client.submit(spec_for("update", "B"))
        client.wait(first["id"])
        again = client.submit(spec_for("update", "B"))
        assert again["id"] == first["id"]
        assert again["shard"] == first["shard"]
        assert simulations_run(client) == 1


class TestBitIdentical:
    def test_matrix_through_coordinator_equals_serial(self, client):
        workloads, configs = ["update", "swap"], ["B", "WB"]
        serial = run_matrix(workloads,
                            [c for c in CONFIGURATIONS if c.name in configs],
                            SCALE, parallel=False, cache=False)
        statuses = client.submit_matrix(workloads, configs,
                                        SCALE.ops_per_txn, SCALE.txns)
        finals = client.wait_all(statuses)
        assert all(status["state"] == "done" for status in finals)
        index = 0
        for workload in workloads:
            for config in configs:
                reference = serial[workload][config]
                summary = client.result(statuses[index]["id"])
                assert summary["digest"] == result_digest(reference)
                served = client.result_pickle(statuses[index]["id"])
                assert result_digest(served) == result_digest(reference)
                index += 1


class TestFederation:
    def test_metrics_carry_shard_labels_and_cluster_series(self, client):
        client.wait(client.submit(spec_for("update", "B"))["id"])
        page = client.metrics()
        assert 'shard="shard0"' in page or 'shard="shard1"' in page
        assert "repro_cluster_jobs_routed_total" in page
        assert "repro_cluster_shards_available" in page
        # Well-formed: one HELP per family even with two shards merged.
        help_lines = [line for line in page.splitlines()
                      if line.startswith("# HELP repro_jobs_submitted_total ")]
        assert len(help_lines) == 1

    def test_healthz_reports_every_shard(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["shards"]) == {"shard0", "shard1"}
        assert all(info["breaker"] == "closed"
                   for info in health["shards"].values())


class TestEventStreamThroughCoordinator:
    def test_wait_via_events_and_resumable_ids(self, client, coordinator):
        """The coordinator pipes shard SSE streams through verbatim —
        including event IDs — and forwards a client's Last-Event-ID so
        a watcher can resume through the proxy layer."""
        status = client.submit(spec_for("swap", "B"))
        final = client.wait(status["id"], via_events=True)
        assert final["state"] == "done"
        events = list(client.watch(status["id"]))
        assert [e["event"] for e in events][-1] == "done"

        import http.client as http_client
        conn = http_client.HTTPConnection("127.0.0.1", coordinator.port,
                                          timeout=30)
        conn.request("GET", "/jobs/%s/events" % status["id"],
                     headers={"Last-Event-ID": "0"})
        response = conn.getresponse()
        body = response.read().decode()
        conn.close()
        ids = [int(line.split(":", 1)[1]) for line in body.splitlines()
               if line.startswith("id:")]
        assert ids and ids[0] == 1      # replay resumed after event 0
        assert ids == list(range(1, 1 + len(ids)))


class TestRateLimit:
    def test_burst_exhaustion_gets_429_and_isolated_tenants(self, shards):
        with ThreadedCoordinator(
                shards=[("127.0.0.1", s.port) for s in shards],
                probe_interval_s=5.0, rate=0.5, burst=2) as coordinator:
            greedy = ServiceClient(port=coordinator.port, client_id="greedy")
            greedy.submit(spec_for("update", "B"))
            greedy.submit(spec_for("update", "WB"))
            with pytest.raises(Backpressure) as excinfo:
                greedy.submit(spec_for("update", "SU"))
            assert excinfo.value.retry_after_s > 0
            # Another tenant's bucket is untouched.
            polite = ServiceClient(port=coordinator.port, client_id="polite")
            status = polite.submit(spec_for("update", "IQ"))
            assert status["state"] in ("queued", "running", "done")


class TestShardFailure:
    def test_kill_evict_reroute_bit_identical(self, shards, coordinator):
        """Kill a shard with queued work: probes trip its breaker and
        evict it, queued jobs re-route to the surviving shard, and the
        full job set completes with serial-identical digests."""
        client = ServiceClient(port=coordinator.port, client_id="chaos")
        # Freeze both shards so submissions stay queued at kill time.
        for server in shards:
            server.call(server.scheduler.pause)
        specs, statuses = [], []
        for seed in range(8):
            spec = spec_for("update", "B", seed=2021 + seed)
            specs.append(spec)
            statuses.append(client.submit(spec))
        by_shard = {}
        for status in statuses:
            by_shard.setdefault(status["shard"], []).append(status)
        assert len(by_shard) == 2, \
            "8 seeds should spread over both shards: %s" % by_shard.keys()

        victim_name = "shard0"
        victim = shards[0]
        survivor = shards[1]
        victim_jobs = by_shard.get(victim_name, [])
        # Hard-kill the victim (no drain), then let the survivor work.
        victim.stop()
        survivor.call(survivor.scheduler.resume)

        finals = client.wait_all(statuses, timeout=120)
        assert all(status["state"] == "done" for status in finals)
        health = client.healthz()
        assert health["shards"][victim_name]["evicted"]
        assert health["shards"][victim_name]["breaker"] == "open"
        assert health["shards"][victim_name]["breaker_trips"] >= 1
        if victim_jobs:
            samples = client.metric_samples()
            assert samples.get("repro_cluster_reroutes_total", 0) >= \
                len(victim_jobs)

        from repro.harness.runner import run_one

        config = next(c for c in CONFIGURATIONS if c.name == "B")
        for spec, status in zip(specs, statuses):
            reference = run_one(spec.workload, config, spec.scale)
            summary = client.result(status["id"])
            assert summary["digest"] == result_digest(reference)

"""Circuit-breaker state-machine tests with an injected fake clock."""

import pytest

from repro.cluster.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, **overrides):
    kwargs = dict(threshold=0.5, reset_timeout_s=2.0, alpha=0.3,
                  min_samples=3, clock=clock)
    kwargs.update(overrides)
    return CircuitBreaker(**kwargs)


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = make(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_single_failure_on_cold_breaker_does_not_trip(self, clock):
        """min_samples: one blip on a fresh breaker is not evidence."""
        breaker = make(clock)
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_sustained_failures_trip_open(self, clock):
        breaker = make(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_interleaved_failures_still_trip(self, clock):
        """EWMA beats a consecutive-failure counter: a shard failing
        most requests trips even though successes are interleaved."""
        breaker = make(clock)
        for _ in range(4):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == OPEN

    def test_mostly_successes_never_trip(self, clock):
        breaker = make(clock)
        for _ in range(20):
            breaker.record_success()
            breaker.record_success()
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_trip_forces_open(self, clock):
        breaker = make(clock)
        breaker.trip()
        assert breaker.state == OPEN
        assert not breaker.allow()


class TestOpen:
    def test_refuses_until_reset_timeout(self, clock):
        breaker = make(clock)
        breaker.trip()
        clock.advance(1.99)
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_moves_to_half_open_after_timeout(self, clock):
        breaker = make(clock)
        breaker.trip()
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def trip_and_wait(self, clock, **overrides):
        breaker = make(clock, **overrides)
        breaker.trip()
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        return breaker

    def test_admits_bounded_probes(self, clock):
        breaker = self.trip_and_wait(clock, max_probes=1)
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # no second concurrent probe

    def test_probe_success_closes_and_resets(self, clock):
        breaker = self.trip_and_wait(clock)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate == 0.0
        assert breaker.samples == 0
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_timer(self, clock):
        breaker = self.trip_and_wait(clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(1.0)
        assert breaker.state == OPEN     # timer restarted at reopen
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_required_successes_gt_one(self, clock):
        breaker = self.trip_and_wait(clock, max_probes=2,
                                     required_successes=2)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN   # one down, one to go
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_full_cycle_closed_open_half_open_closed(self, clock):
        """The canonical recovery arc, end to end."""
        breaker = make(clock)
        for _ in range(5):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(2.5)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()


class TestEnvDefaults:
    def test_env_overrides(self, clock, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0.9")
        monkeypatch.setenv("REPRO_BREAKER_RESET", "7.5")
        breaker = CircuitBreaker(clock=clock)
        assert breaker.threshold == 0.9
        assert breaker.reset_timeout_s == 7.5

    def test_junk_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "hot")
        with pytest.raises(ValueError, match="REPRO_BREAKER_THRESHOLD"):
            CircuitBreaker()

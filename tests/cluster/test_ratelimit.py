"""Per-tenant token-bucket tests with an injected fake clock."""

import pytest

from repro.cluster.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTokenBucket:
    def test_burst_then_reject(self, clock):
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        retry = bucket.try_acquire()
        assert retry is not None and retry > 0

    def test_retry_after_is_honest(self, clock):
        """The hint is exactly the time until the bucket refills enough."""
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() is None
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.5)
        clock.advance(retry)
        assert bucket.try_acquire() is None

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(100.0)  # hours of refill still caps at burst
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_steady_state_rate(self, clock):
        """Draining the burst, a tenant sustains exactly `rate`/s."""
        bucket = TokenBucket(rate=5.0, burst=1, clock=clock)
        admitted = 0
        for _ in range(50):
            if bucket.try_acquire() is None:
                admitted += 1
            clock.advance(0.1)
        assert admitted == pytest.approx(25, abs=2)

    def test_rejects_nonpositive_parameters(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0, clock=clock)


class TestRateLimiter:
    def test_tenants_are_isolated(self, clock):
        """One tenant exhausting its bucket cannot starve another."""
        limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
        assert limiter.try_acquire("greedy") is None
        assert limiter.try_acquire("greedy") is None
        assert limiter.try_acquire("greedy") is not None
        assert limiter.try_acquire("polite") is None
        assert limiter.tenants == 2

    def test_rejection_count(self, clock):
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        limiter.try_acquire("a")
        limiter.try_acquire("a")
        limiter.try_acquire("a")
        assert limiter.rejections == 2

    def test_env_defaults(self, clock, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_RATE", "3.5")
        monkeypatch.setenv("REPRO_CLUSTER_BURST", "7")
        limiter = RateLimiter(clock=clock)
        assert limiter.rate == 3.5
        assert limiter.burst == 7

    def test_junk_env_rejected(self, clock, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_BURST", "lots")
        with pytest.raises(ValueError, match="REPRO_CLUSTER_BURST"):
            RateLimiter(clock=clock)

"""The PR's acceptance e2e: SIGKILL the coordinator mid-matrix, restart
it from its journal, and finish with bit-identical digests and zero
duplicate shard executions — with and without network faults on the
coordinator->shard links.

Real processes everywhere: shards are :class:`LocalCluster` subprocess
workers, the coordinator runs as ``python -m repro.cluster coordinator``
so it can be killed with ``SIGKILL`` (no atexit, no flush, no mercy) and
restarted on the same port over the same ``--journal-dir``.

The teardown also asserts the satellite guarantee: a stopped
:class:`LocalCluster` leaves no port files or per-shard scratch dirs
behind.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.chaos.netproxy import NetFaultPlan, NetFaultSpec, ThreadedFaultProxy
from repro.cluster.local import LocalCluster
from repro.harness import CONFIGURATIONS, run_matrix
from repro.service import JobSpec, ServiceClient, result_digest
from repro.workloads import Scale

WORKLOADS = ["update", "swap"]
CONFIG_NAMES = ["B", "WB"]
SCALE = Scale(ops_per_txn=4, txns=2)

#: Degraded-but-alive links: constant small latency with seeded jitter
#: on every connection, plus one outright refusal per link.  Faults that
#: could hide a *successful* admission from the coordinator (truncating
#: a submit response) are exercised in the unit tests instead — here
#: every fault preserves at-most-once on the wire so the zero-duplicate
#: assertion stays exact.
_CHAOS_PLAN = NetFaultPlan(
    faults=[NetFaultSpec(action="latency", times=-1, delay_s=0.01,
                         jitter_s=0.02),
            NetFaultSpec(action="refuse", times=1)],
    seed=7)


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spec(workload, config, seed=SCALE.seed):
    return JobSpec(kind="simulate", workload=workload, config=config,
                   ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                   seed=seed)


def _spawn_coordinator(addresses, port, journal_dir, port_file, log_path):
    command = [sys.executable, "-m", "repro.cluster", "coordinator",
               "--port", str(port), "--port-file", str(port_file),
               "--journal-dir", str(journal_dir),
               "--probe-interval", "0.3"]
    for host, shard_port in addresses:
        command += ["--shard", "%s:%d" % (host, shard_port)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1]) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    # The test owns its proxies; the CLI must not stack more on top.
    env.pop("REPRO_NETPROXY_PLAN", None)
    with open(log_path, "ab") as log_handle:
        return subprocess.Popen(command, env=env, stdout=log_handle,
                                stderr=subprocess.STDOUT,
                                start_new_session=True)


def _await_coordinator(port_file, port, timeout=60.0):
    client = ServiceClient(port=port, client_id="pytest-e2e")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if port_file.exists():
            try:
                if client.healthz()["role"] == "coordinator":
                    return client
            except Exception:
                pass
        time.sleep(0.1)
    raise AssertionError("coordinator never became healthy on port %d"
                         % port)


def _simulations_run(client):
    return sum(value for name, value in client.metric_samples().items()
               if name.startswith("repro_simulations_run_total"))


@pytest.mark.parametrize("chaos", [False, True], ids=["clean", "netfaults"])
def test_sigkill_midmatrix_restart_is_exactly_once_bitidentical(
        tmp_path, chaos):
    serial = run_matrix(
        WORKLOADS, [c for c in CONFIGURATIONS if c.name in CONFIG_NAMES],
        SCALE, parallel=False, cache=False)
    cells = [(w, c) for w in WORKLOADS for c in CONFIG_NAMES]

    cluster = LocalCluster(shards=2, workdir=tmp_path / "cluster")
    proxies = []
    coordinator = None
    port_file = tmp_path / "coordinator.port"
    journal_dir = tmp_path / "journal"
    log_path = tmp_path / "coordinator.log"
    try:
        cluster.start()
        addresses = cluster.addresses
        if chaos:
            for host, shard_port in addresses:
                proxy = ThreadedFaultProxy(upstream_host=host,
                                           upstream_port=shard_port,
                                           plan=_CHAOS_PLAN)
                proxy.start()
                proxies.append(proxy)
            addresses = [("127.0.0.1", proxy.port) for proxy in proxies]

        port = _free_port()
        coordinator = _spawn_coordinator(addresses, port, journal_dir,
                                         port_file, log_path)
        client = _await_coordinator(port_file, port)

        # First half of the matrix, then kill -9 — no drain, no flush.
        statuses = [client.submit_retrying(_spec(w, c))
                    for w, c in cells[:2]]
        coordinator.send_signal(signal.SIGKILL)
        coordinator.wait(timeout=30)
        assert journal_dir.joinpath("coordinator.journal").stat().st_size > 0

        # Restart on the same port from the same journal; finish the
        # matrix through the recovered coordinator.
        port_file.unlink()
        coordinator = _spawn_coordinator(addresses, port, journal_dir,
                                         port_file, log_path)
        client = _await_coordinator(port_file, port)
        health = client.healthz()
        assert health["journal"]["recovered_jobs"] >= len(statuses)
        statuses += [client.submit_retrying(_spec(w, c))
                     for w, c in cells[2:]]

        finals = client.wait_all(statuses, timeout=180)
        assert all(status["state"] == "done" for status in finals)

        # Bit-identical to the serial reference, cell by cell.
        for (workload, config), status in zip(cells, statuses):
            summary = client.result(status["id"])
            assert summary["digest"] == result_digest(
                serial[workload][config])

        # Zero duplicate executions across the crash: four unique
        # simulations, four runs fleet-wide (replays were cache or
        # in-flight coalesce hits on the surviving shards).
        assert _simulations_run(client) == len(cells)

        if chaos:
            stats = [proxy.stats() for proxy in proxies]
            assert all(s["latency"] > 0 for s in stats)
            assert sum(s["refuse"] for s in stats) == len(proxies)
    finally:
        if coordinator is not None and coordinator.poll() is None:
            coordinator.send_signal(signal.SIGTERM)
            try:
                coordinator.wait(timeout=30)
            except subprocess.TimeoutExpired:
                coordinator.kill()
                coordinator.wait(timeout=10)
        for proxy in proxies:
            proxy.stop()
        cluster.stop()

    # Satellite: a stopped cluster leaves nothing behind — no port
    # files, no per-shard scratch dirs.
    assert cluster.leftover_artifacts() == []


def test_local_cluster_stop_removes_artifacts(tmp_path):
    cluster = LocalCluster(shards=2, workdir=tmp_path / "cluster")
    with cluster:
        assert len(cluster.leftover_artifacts()) == 4  # 2 ports + 2 tmps
        for worker in cluster.workers:
            assert worker.scratch_dir.is_dir()
    assert cluster.leftover_artifacts() == []
    # The externally supplied workdir itself survives (only owned
    # scratch state is reaped).
    assert (tmp_path / "cluster").is_dir()

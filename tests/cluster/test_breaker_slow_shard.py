"""Circuit breaker vs. a *slow* shard (satellite of the chaos PR).

``tests/cluster/test_breaker.py`` unit-tests the state machine with an
injected clock; here the breaker faces a real degraded link — a
:class:`ThreadedFaultProxy` adding more latency than the probe timeout
tolerates — and must:

* trip open on timeouts (a shard that never answers inside the budget
  is failing, even though TCP connects fine);
* send half-open probes *through* the still-degraded link and re-open;
* re-close once the latency is lifted, restoring routability.
"""

import asyncio
import time

import pytest

from repro.chaos.netproxy import NetFaultPlan, NetFaultSpec, ThreadedFaultProxy
from repro.cluster.breaker import CLOSED, OPEN
from repro.cluster.coordinator import ClusterCoordinator, ThreadedCoordinator
from repro.service import JobSpec, ServiceClient, ThreadedServer
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=4, txns=2)

#: More latency than any probe/read budget used below.
_SLOW = NetFaultPlan(faults=[NetFaultSpec(action="latency", times=-1,
                                          delay_s=1.0)])


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                  seed=SCALE.seed)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def shard(tmp_path):
    with ThreadedServer(max_workers=1, cache_dir=tmp_path / "cache") as server:
        yield server


@pytest.fixture
def slow_link(shard):
    with ThreadedFaultProxy(upstream_host="127.0.0.1",
                            upstream_port=shard.port, plan=_SLOW) as proxy:
        yield proxy


class TestBreakerStateMachine:
    def test_timeout_trips_half_open_reopens_recovery_closes(self, slow_link):
        coordinator = ClusterCoordinator(
            shards=[("127.0.0.1", slow_link.port)],
            probe_timeout_s=0.3, evict_after=1000, breaker_reset_s=0.4)
        shard_state = coordinator.shards["shard0"]
        breaker = shard_state.breaker

        # Trip: three timed-out probes cross the EWMA threshold.  The
        # link *connects* fine — only timeout-as-failure can see this.
        for _ in range(3):
            asyncio.run(coordinator.probe_once())
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not shard_state.routable

        # Half-open probe goes through the still-degraded link: re-open.
        time.sleep(breaker.reset_timeout_s + 0.1)
        asyncio.run(coordinator.probe_once())
        assert breaker.state == OPEN
        assert breaker.trips == 2

        # Lift the latency: the next half-open probe closes the breaker.
        slow_link.set_plan(NetFaultPlan(faults=[]))
        time.sleep(breaker.reset_timeout_s + 0.1)
        asyncio.run(coordinator.probe_once())
        assert breaker.state == CLOSED
        assert shard_state.routable
        assert shard_state.probes_ok >= 1


class TestRoutingAroundSlowShard:
    def test_cluster_routes_around_then_readmits(self, shard, slow_link):
        """Two 'shards', one behind a degraded link: the breaker opens
        from probe timeouts, work flows to the healthy link, and once
        latency lifts the shard is re-admitted."""
        def breaker_of(client, name):
            return client.healthz()["shards"][name]["breaker"]

        def await_state(client, name, want, timeout=10.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if breaker_of(client, name) == want:
                    return
                time.sleep(0.1)
            raise AssertionError(
                "shard %s breaker never reached %r (now %r)"
                % (name, want, breaker_of(client, name)))

        with ThreadedCoordinator(
                shards=[("127.0.0.1", slow_link.port),
                        ("127.0.0.1", shard.port)],
                probe_interval_s=0.2, probe_timeout_s=0.3,
                evict_after=1000, breaker_reset_s=1.0) as threaded:
            client = ServiceClient(port=threaded.port, client_id="pytest")
            await_state(client, "shard0", "open")
            assert breaker_of(client, "shard1") == "closed"

            # Every submission lands on the healthy shard while the
            # slow one is circuit-open.
            statuses = [client.submit(spec_for("update", "B", seed=s))
                        for s in (11, 12, 13)]
            assert {s["shard"] for s in statuses} == {"shard1"}
            finals = client.wait_all(statuses)
            assert all(s["state"] == "done" for s in finals)

            slow_link.set_plan(NetFaultPlan(faults=[]))
            await_state(client, "shard0", "closed")
            health = client.healthz()
            assert health["shards"]["shard0"]["routable"]

"""Unit tests for the coordinator's write-ahead journal.

The journal's contract: every appended record survives a crash at any
byte boundary (torn tails are detected by the per-record CRC frame and
truncated away), replay rebuilds exactly the folded state, and
compaction atomically rewrites the log to the minimal record stream
without ever losing an unfinished job's replay body.
"""

import json
import os
import struct

import pytest

from repro.cluster.journal import (
    KIND_ADMIT,
    KIND_DONE,
    KIND_MEMBER,
    KIND_ROUTE,
    CoordinatorJournal,
    replay_records,
    snapshot_records,
)

_HEADER = struct.Struct("<4sII")


def _admit(job, body=b"{}", tenant="t"):
    return {"kind": KIND_ADMIT, "job": job,
            "body": body.decode("latin-1"), "tenant": tenant}


def _route(job, shard):
    return {"kind": KIND_ROUTE, "job": job, "shard": shard}


def _done(job):
    return {"kind": KIND_DONE, "job": job}


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        records = [_admit("j1", b'{"spec": 1}'), _route("j1", "shard0"),
                   _done("j1"), {"kind": KIND_MEMBER, "shard": "shard1",
                                 "event": "evict"}]
        with CoordinatorJournal(tmp_path) as journal:
            for record in records:
                journal.append(record)
        replayed = CoordinatorJournal(tmp_path).replay()
        assert [dict(r) for r in replayed] == records

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        journal = CoordinatorJournal(tmp_path / "nonexistent")
        assert journal.replay() == []

    def test_torn_tail_is_truncated(self, tmp_path):
        journal = CoordinatorJournal(tmp_path)
        with journal:
            journal.append(_admit("j1"))
            journal.append(_admit("j2"))
        # Simulate a crash mid-append: half a frame at the tail.
        good_size = journal.path.stat().st_size
        with open(journal.path, "ab") as handle:
            handle.write(_HEADER.pack(b"RPJ1", 0, 4096) + b"par")
        fresh = CoordinatorJournal(tmp_path)
        replayed = fresh.replay()
        assert [r["job"] for r in replayed] == ["j1", "j2"]
        assert fresh.replay_truncated > 0
        # The damage is gone from disk, not just skipped.
        assert journal.path.stat().st_size == good_size

    def test_corrupt_crc_stops_replay_at_damage(self, tmp_path):
        journal = CoordinatorJournal(tmp_path)
        with journal:
            journal.append(_admit("j1"))
            mark = journal.path.stat().st_size
            journal.append(_admit("j2"))
        blob = bytearray(journal.path.read_bytes())
        blob[mark + _HEADER.size + 2] ^= 0xFF  # flip a payload bit
        journal.path.write_bytes(bytes(blob))
        replayed = CoordinatorJournal(tmp_path).replay()
        assert [r["job"] for r in replayed] == ["j1"]

    def test_bad_magic_stops_replay(self, tmp_path):
        journal = CoordinatorJournal(tmp_path)
        with journal:
            journal.append(_admit("j1"))
        with open(journal.path, "ab") as handle:
            payload = json.dumps(_admit("evil")).encode()
            handle.write(_HEADER.pack(b"XXXX", 0, len(payload)) + payload)
        replayed = CoordinatorJournal(tmp_path).replay()
        assert [r["job"] for r in replayed] == ["j1"]

    def test_append_after_replay_continues_the_log(self, tmp_path):
        with CoordinatorJournal(tmp_path) as journal:
            journal.append(_admit("j1"))
        second = CoordinatorJournal(tmp_path)
        assert [r["job"] for r in second.replay()] == ["j1"]
        with second:
            second.append(_admit("j2"))
        assert [r["job"] for r in CoordinatorJournal(tmp_path).replay()] \
            == ["j1", "j2"]


class TestFsyncBatching:
    def test_interval_batches_fsyncs(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (calls.append(fd), real_fsync(fd)))
        clock = iter([0.0, 0.1, 0.2, 5.0]).__next__
        journal = CoordinatorJournal(tmp_path, fsync_interval_s=1.0,
                                     clock=clock)
        with journal:
            journal.append(_admit("j1"))   # t=0.0: first sync
            count_after_first = len(calls)
            journal.append(_admit("j2"))   # t=0.1: batched
            journal.append(_admit("j3"))   # t=0.2: batched
            assert len(calls) == count_after_first
            journal.append(_admit("j4"))   # t=5.0: interval elapsed
            assert len(calls) == count_after_first + 1
        # close() flushes nothing extra: no appends were pending.
        assert [r["job"] for r in CoordinatorJournal(tmp_path).replay()] \
            == ["j1", "j2", "j3", "j4"]

    def test_zero_interval_syncs_every_append(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (calls.append(fd), real_fsync(fd)))
        with CoordinatorJournal(tmp_path, fsync_interval_s=0.0) as journal:
            journal.append(_admit("j1"))
            journal.append(_admit("j2"))
        assert len(calls) >= 2


class TestCompaction:
    def test_size_trigger_and_equivalent_state(self, tmp_path):
        journal = CoordinatorJournal(tmp_path, compact_bytes=4096)
        body = b"x" * 512
        with journal:
            for index in range(20):
                job = "job%d" % index
                journal.append(_admit(job, body))
                journal.append(_route(job, "shard0"))
                journal.append(_done(job))
            state = replay_records(
                [_admit("job%d" % i, body) for i in range(20)]
                + [_route("job%d" % i, "shard0") for i in range(20)]
                + [_done("job%d" % i) for i in range(20)])
            assert journal.size_bytes > journal.compact_bytes
            compacted = journal.maybe_compact(
                lambda: snapshot_records(state.jobs, state.membership))
            assert compacted
            assert journal.compactions == 1
            # Terminal jobs compact to route+done: no bodies remain.
            assert journal.size_bytes < 4096
        replayed = replay_records(CoordinatorJournal(tmp_path).replay())
        assert set(replayed.jobs) == set(state.jobs)
        assert all(info["terminal"] for info in replayed.jobs.values())
        assert all(info["shard"] == "shard0"
                   for info in replayed.jobs.values())

    def test_no_trigger_below_threshold(self, tmp_path):
        with CoordinatorJournal(tmp_path, compact_bytes=1 << 20) as journal:
            journal.append(_admit("j1"))
            assert not journal.maybe_compact(
                lambda: pytest.fail("snapshot must not be called"))

    def test_unfinished_jobs_keep_bodies_through_compaction(self, tmp_path):
        with CoordinatorJournal(tmp_path, compact_bytes=4096) as journal:
            journal.append(_admit("pending", b'{"keep": "me"}'))
            journal.append(_route("pending", "shard1"))
            state = replay_records(
                [_admit("pending", b'{"keep": "me"}'),
                 _route("pending", "shard1")])
            journal.compact(snapshot_records(state.jobs, state.membership))
        replayed = replay_records(CoordinatorJournal(tmp_path).replay())
        assert replayed.jobs["pending"]["body"] == b'{"keep": "me"}'
        assert replayed.jobs["pending"]["shard"] == "shard1"
        assert replayed.unfinished == ["pending"]

    def test_append_works_after_compaction(self, tmp_path):
        with CoordinatorJournal(tmp_path, compact_bytes=4096) as journal:
            journal.append(_admit("j1"))
            journal.compact([])
            journal.append(_admit("j2"))
        assert [r["job"] for r in CoordinatorJournal(tmp_path).replay()] \
            == ["j2"]


class TestReplayFolding:
    def test_admit_route_done_lifecycle(self):
        state = replay_records([
            _admit("j1", b"b1"), _admit("j2", b"b2"), _admit("j3", b"b3"),
            _route("j1", "shard0"), _route("j2", "shard1"),
            _done("j1"),
        ])
        assert state.jobs["j1"]["terminal"]
        assert state.jobs["j1"]["body"] == b""      # dropped when done
        assert not state.jobs["j2"]["terminal"]
        assert state.jobs["j2"]["body"] == b"b2"
        assert state.jobs["j3"]["shard"] is None
        # Unfinished, in admission order, only jobs with replay bodies.
        assert state.unfinished == ["j2", "j3"]

    def test_membership_last_event_wins(self):
        state = replay_records([
            {"kind": KIND_MEMBER, "shard": "shard0", "event": "evict"},
            {"kind": KIND_MEMBER, "shard": "shard0", "event": "rejoin"},
            {"kind": KIND_MEMBER, "shard": "shard1", "event": "evict"},
        ])
        assert state.membership == {"shard0": "rejoin", "shard1": "evict"}

    def test_snapshot_replay_fixpoint(self):
        state = replay_records([
            _admit("j1", b"b1"), _route("j1", "shard0"), _done("j1"),
            _admit("j2", b"b2"), _route("j2", "shard1"),
            {"kind": KIND_MEMBER, "shard": "shard0", "event": "evict"},
        ])
        again = replay_records(
            snapshot_records(state.jobs, state.membership))
        # Tenant is only preserved where it matters: for jobs that may
        # still be replayed.  Everything else must round-trip exactly.
        assert again.jobs["j2"] == state.jobs["j2"]
        for key in ("body", "shard", "terminal"):
            assert again.jobs["j1"][key] == state.jobs["j1"][key]
        assert again.membership == state.membership
        assert again.unfinished == state.unfinished

"""End-to-end deadline propagation and hedged reads at the coordinator.

A client-sent ``X-Deadline`` must bound every upstream second the
coordinator spends on that request and expire as an honest ``504`` —
never an indefinite hang, never a misleading ``429``/``502``.  And when
the recorded owner of a job sits behind a black-holed link, a status
read must be *hedged* to the next candidate after ``hedge_delay_s``
instead of serially burning a full read timeout per candidate.
"""

import time

import pytest

from repro.chaos.netproxy import NetFaultPlan, NetFaultSpec, ThreadedFaultProxy
from repro.cluster.coordinator import ThreadedCoordinator
from repro.service import JobSpec, ServiceClient, ThreadedServer
from repro.service.client import ServiceError
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=4, txns=2)

_BLACKHOLE = NetFaultPlan(
    faults=[NetFaultSpec(action="blackhole", times=-1, direction="s2c")])


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                  seed=SCALE.seed)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def shard(tmp_path):
    with ThreadedServer(max_workers=1, cache_dir=tmp_path / "cache") as server:
        yield server


@pytest.fixture
def blackhole(shard):
    with ThreadedFaultProxy(upstream_host="127.0.0.1",
                            upstream_port=shard.port,
                            plan=_BLACKHOLE) as proxy:
        yield proxy


class TestDeadlines:
    def test_submit_against_blackhole_expires_as_504(self, blackhole):
        with ThreadedCoordinator(
                shards=[("127.0.0.1", blackhole.port)],
                probe_interval_s=60.0, probe_timeout_s=2.0) as threaded:
            client = ServiceClient(port=threaded.port, client_id="pytest",
                                   deadline_s=0.4)
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec_for("update", "B"))
            elapsed = time.monotonic() - start
            assert excinfo.value.status == 504
            # The deadline bounded the upstream exchange: nowhere near
            # the default 10-minute proxy budget.
            assert elapsed < 5.0
            samples = client.metric_samples()
            assert samples.get(
                "repro_cluster_deadline_exceeded_total", 0) >= 1

    def test_status_read_against_blackhole_expires_as_504(self, blackhole):
        with ThreadedCoordinator(
                shards=[("127.0.0.1", blackhole.port)],
                probe_interval_s=60.0, probe_timeout_s=2.0) as threaded:
            client = ServiceClient(port=threaded.port, client_id="pytest",
                                   deadline_s=0.4)
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.status("no-such-job")
            elapsed = time.monotonic() - start
            assert excinfo.value.status == 504
            assert elapsed < 5.0

    def test_no_deadline_means_no_504(self, shard):
        with ThreadedCoordinator(
                shards=[("127.0.0.1", shard.port)],
                probe_interval_s=60.0) as threaded:
            client = ServiceClient(port=threaded.port, client_id="pytest")
            status = client.submit(spec_for("update", "B"))
            final = client.wait(status["id"])
            assert final["state"] == "done"


class TestHedgedReads:
    def test_blackholed_owner_is_hedged_around(self, shard, blackhole):
        """Both 'shards' front the same backend, but shard0's link eats
        responses.  With the recorded route pinned to shard0, a status
        read must answer via shard1 after one hedge delay — not after
        shard0's full read timeout."""
        with ThreadedCoordinator(
                shards=[("127.0.0.1", blackhole.port),
                        ("127.0.0.1", shard.port)],
                probe_interval_s=60.0, probe_timeout_s=2.0,
                proxy_timeout_s=0.5, read_timeout_s=5.0,
                hedge_delay_s=0.15) as threaded:
            client = ServiceClient(port=threaded.port, client_id="pytest")
            status = client.submit(spec_for("swap", "WB"))
            job_id = status["id"]
            client.wait(job_id)

            def pin_route():
                route = threaded.coordinator.routes[job_id]
                route.shard = "shard0"
                return route.shard

            assert threaded.call(pin_route) == "shard0"
            start = time.monotonic()
            final = client.status(job_id)
            elapsed = time.monotonic() - start
            assert final["state"] == "done"
            # Answered by the healthy candidate, well inside the
            # blackholed owner's 5s read timeout.
            assert final["shard"] == "shard1"
            assert elapsed < 3.0
            samples = client.metric_samples()
            assert samples.get("repro_cluster_hedged_reads_total", 0) >= 1

"""Benchmark-harness plumbing: scale env vars must be validated loudly."""

import pytest

from benchmarks.common import bench_scale, config_names
from repro.workloads import Scale


class TestBenchScaleEnv:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_OPS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_TXNS", raising=False)
        assert bench_scale() == Scale(ops_per_txn=25, txns=20)

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "7")
        monkeypatch.setenv("REPRO_BENCH_TXNS", "4")
        assert bench_scale() == Scale(ops_per_txn=7, txns=4)

    def test_empty_string_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "")
        assert bench_scale().ops_per_txn == 25

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_non_positive_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BENCH_OPS", value)
        with pytest.raises(ValueError, match="REPRO_BENCH_OPS"):
            bench_scale()
        monkeypatch.delenv("REPRO_BENCH_OPS")
        monkeypatch.setenv("REPRO_BENCH_TXNS", value)
        with pytest.raises(ValueError, match="REPRO_BENCH_TXNS"):
            bench_scale()

    def test_malformed_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TXNS", "many")
        with pytest.raises(ValueError, match="REPRO_BENCH_TXNS"):
            bench_scale()


def test_config_names_order():
    assert config_names() == ["B", "SU", "IQ", "WB", "U"]

"""Trace-replay fast path: bit-identical to the legacy event loop.

The packed-row replay loop (:mod:`repro.pipeline.replay`) is the default
run loop of :class:`~repro.pipeline.core.OutOfOrderCore`; ``replay=False``
selects the legacy event-driven loop, which stays the golden reference.
Every observable — cycle counts, the full stats dataclass, store
visibility and the persist log — must match between the two, for every
workload under every configuration.
"""

import dataclasses

import pytest

import repro.workloads  # noqa: F401  (registers workloads)
from repro.harness.configs import CONFIGURATIONS, DEFAULT_PARAMS
from repro.harness.runner import warm_hierarchy
from repro.memory.controller import MemoryController
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.replay import (
    R_INST,
    TraceMeta,
    build_rows,
    meta_for,
)
from repro.workloads import Scale
from repro.workloads import base as workload_base

#: Small but structurally complete: several transactions, enough ops to
#: exercise the write buffer, EDM keys and DMB epochs in every mode.
TEST_SCALE = Scale(ops_per_txn=4, txns=3)


def _simulate(built, config, replay):
    """One simulation; returns every observable as comparable data."""
    params = DEFAULT_PARAMS
    controller = MemoryController(
        address_map=params.address_map,
        dram_params=params.dram,
        nvm_params=params.nvm,
    )
    hierarchy = CacheHierarchy(controller, params.hierarchy)
    warm_hierarchy(hierarchy, built)
    core = OutOfOrderCore(built.trace, hierarchy, config.policy,
                          params.core, replay=replay)
    stats = core.run()
    controller.nvm.drain_all(stats.cycles)
    return (dataclasses.asdict(stats),
            list(core.store_visibility),
            list(controller.persist_log.records()))


@pytest.mark.parametrize("workload", sorted(workload_base.workload_names()))
@pytest.mark.parametrize("config", CONFIGURATIONS, ids=lambda c: c.name)
def test_replay_matches_legacy_loop(workload, config):
    built = workload_base.build(workload, config.fence_mode, TEST_SCALE)
    legacy = _simulate(built, config, replay=False)
    fast = _simulate(built, config, replay=meta_for(built))
    assert fast == legacy


def test_default_run_uses_replay_and_matches():
    """``replay=None`` (the constructor default) builds its own rows and
    still equals the legacy loop."""
    config = CONFIGURATIONS[0]
    built = workload_base.build("btree", config.fence_mode, TEST_SCALE)
    assert _simulate(built, config, replay=None) == _simulate(
        built, config, replay=False)


class TestTraceMeta:
    def _built(self):
        return workload_base.build("update", "ede", TEST_SCALE)

    def test_rows_parallel_the_trace(self):
        built = self._built()
        rows = build_rows(built.trace)
        assert len(rows) == len(built.trace)
        assert all(row[R_INST] is inst
                   for row, inst in zip(rows, built.trace))

    def test_matches_rejects_other_traces(self):
        built = self._built()
        other = workload_base.build("btree", "ede", TEST_SCALE)
        meta = TraceMeta(built.trace)
        assert meta.matches(built.trace)
        assert not meta.matches(other.trace)
        assert not meta.matches(built.trace[:-1])

    def test_meta_for_is_memoized_per_workload(self):
        built = self._built()
        assert meta_for(built) is meta_for(built)

    def test_mismatched_meta_is_rejected_at_construction(self):
        built = self._built()
        other = workload_base.build("btree", "ede", TEST_SCALE)
        params = DEFAULT_PARAMS
        controller = MemoryController(
            address_map=params.address_map,
            dram_params=params.dram,
            nvm_params=params.nvm,
        )
        hierarchy = CacheHierarchy(controller, params.hierarchy)
        config = CONFIGURATIONS[0]
        with pytest.raises(ValueError):
            OutOfOrderCore(built.trace, hierarchy, config.policy,
                           params.core, replay=meta_for(other))

"""Progress watchdog: livelocks and budget blowouts die loudly."""

import dataclasses

import pytest

from repro.isa import instructions as ops
from repro.pipeline.core import SimulationError
from repro.pipeline.params import CoreParams

from tests.pipeline.conftest import make_core


def livelocked_core(params=CoreParams()):
    """A core whose retire stage never drains but whose clock keeps
    ticking: dispatch is suppressed after the first instruction enters
    the ROB, and retirement is vetoed outright.  Events/stages still
    report progress (dispatch returns 1), so the quiescence-based
    deadlock detector never fires — only the watchdog can catch it."""
    trace = [ops.nop() for _ in range(4)]
    core, _ = make_core(trace, params=params)
    core._retire_stage = lambda: 0
    core._dispatch_stage = lambda: 1
    return core


class TestNoRetireWatchdog:
    def test_livelock_raises_with_report(self):
        core = livelocked_core()
        with pytest.raises(SimulationError) as excinfo:
            core.run(no_retire_limit=500)
        message = str(excinfo.value)
        assert "no instruction retired" in message
        assert "watchdog limit 500" in message
        # The rich pipeline-state report rides along.
        assert "ROB:" in message and "event heap" in message

    def test_limit_defaults_to_params(self):
        params = dataclasses.replace(CoreParams(), watchdog_no_retire=300)
        core = livelocked_core(params=params)
        with pytest.raises(SimulationError, match="watchdog limit 300"):
            core.run()

    def test_zero_disables_the_watchdog(self):
        core = livelocked_core()
        # With the watchdog off, only the cycle budget stops the livelock.
        with pytest.raises(SimulationError, match="cycle budget"):
            core.run(max_cycles=2_000, no_retire_limit=0)

    def test_healthy_run_unaffected(self):
        trace = [ops.mov_imm(r % 8, r) for r in range(32)]
        core, _ = make_core(trace)
        stats = core.run(no_retire_limit=100)
        assert stats.retired == len(trace) + 1  # + HALT

    def test_param_validates_zero_but_not_negative(self):
        dataclasses.replace(CoreParams(), watchdog_no_retire=0).validate()
        with pytest.raises(ValueError, match="watchdog_no_retire"):
            dataclasses.replace(CoreParams(),
                                watchdog_no_retire=-1).validate()


class TestCycleBudget:
    def test_budget_blowout_carries_state_report(self):
        core = livelocked_core()
        with pytest.raises(SimulationError) as excinfo:
            core.run(max_cycles=1_000, no_retire_limit=0)
        message = str(excinfo.value)
        assert "exceeded the 1000-cycle budget" in message
        assert "fetch index" in message

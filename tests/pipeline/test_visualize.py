"""Tests for the pipeline visualization helper."""

from repro.core.policies import WB_POLICY
from repro.isa import instructions as ops
from repro.memory import CacheHierarchy, MemoryController
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.visualize import PipelineCapture, trace_pipeline

from tests.pipeline.conftest import NVM


def sample_trace():
    return [
        ops.mov_imm(0, NVM),
        ops.mov_imm(1, 5),
        ops.store(1, 0, addr=NVM),
        ops.dc_cvap(0, addr=NVM),
        ops.halt(),
    ]


def warm_hierarchy():
    hierarchy = CacheHierarchy(MemoryController())
    for cache in (hierarchy.l3, hierarchy.l2, hierarchy.l1d):
        cache.insert(NVM)
    return hierarchy


class TestCapture:
    def test_records_every_instruction(self):
        core = OutOfOrderCore(sample_trace(), warm_hierarchy(), WB_POLICY)
        capture = PipelineCapture(core)
        stats = capture.run()
        assert len(capture.records) == stats.retired
        assert [d.seq for d in capture.records] == sorted(
            d.seq for d in capture.records)

    def test_render_contains_stage_marks(self):
        core = OutOfOrderCore(sample_trace(), warm_hierarchy(), WB_POLICY)
        capture = PipelineCapture(core)
        capture.run()
        text = capture.render()
        assert "D" in text and "R" in text and "C" in text
        assert "str" in text

    def test_render_window(self):
        core = OutOfOrderCore(sample_trace(), warm_hierarchy(), WB_POLICY)
        capture = PipelineCapture(core)
        capture.run()
        text = capture.render(first=2, count=1)
        assert "str" in text
        assert "mov" not in text

    def test_render_empty_window(self):
        core = OutOfOrderCore(sample_trace(), warm_hierarchy(), WB_POLICY)
        capture = PipelineCapture(core)
        capture.run()
        assert "no instructions" in capture.render(first=99)


class TestOneShot:
    def test_trace_pipeline_helper(self):
        text = trace_pipeline(sample_trace(), warm_hierarchy(), WB_POLICY)
        assert text.startswith("cycles")
        assert text.count("\n") == len(sample_trace())

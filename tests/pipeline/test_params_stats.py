"""Tests for pipeline parameters and statistics."""


import pytest

from repro.pipeline.params import CLOCK_GHZ, CoreParams, ns_to_cycles
from repro.pipeline.stats import PipelineStats


class TestParams:
    def test_table1_defaults(self):
        params = CoreParams()
        assert params.decode_width == 3
        assert params.issue_width == 8
        assert params.load_queue_entries == 16
        assert params.store_queue_entries == 16
        assert params.write_buffer_entries == 16

    def test_validate_accepts_defaults(self):
        CoreParams().validate()

    def test_validate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CoreParams(decode_width=0).validate()
        with pytest.raises(ValueError):
            CoreParams(rob_entries=-1).validate()

    def test_dsb_penalty_may_be_zero(self):
        CoreParams(dsb_penalty=0).validate()

    def test_ns_conversion(self):
        assert CLOCK_GHZ == 3.0
        assert ns_to_cycles(150) == 450
        assert ns_to_cycles(500) == 1500
        assert ns_to_cycles(1) == 3


class TestStats:
    def test_issue_histogram(self):
        stats = PipelineStats()
        stats.record_issue_cycles(0)
        stats.record_issue_cycles(3)
        stats.record_issue_cycles(0, cycles=8)
        assert stats.cycles == 10
        assert stats.issue_histogram[0] == 9
        assert stats.issue_histogram[3] == 1

    def test_distribution_sums_to_one(self):
        stats = PipelineStats()
        for issued in (0, 1, 2, 2, 8):
            stats.record_issue_cycles(issued)
        distribution = stats.issue_distribution()
        assert abs(sum(distribution) - 1.0) < 1e-9
        assert distribution[2] == 0.4

    def test_ipc(self):
        stats = PipelineStats()
        stats.retired = 30
        stats.record_issue_cycles(0, cycles=100)
        assert stats.ipc == 0.3

    def test_empty_stats(self):
        stats = PipelineStats()
        assert stats.ipc == 0.0
        assert stats.issue_distribution() == [0.0] * 9
        assert stats.mean_issued_when_active() == 0.0

    def test_active_fraction(self):
        stats = PipelineStats()
        stats.record_issue_cycles(0, cycles=3)
        stats.record_issue_cycles(2)
        assert abs(stats.active_issue_fraction() - 0.25) < 1e-9

    def test_mean_issued_when_active(self):
        stats = PipelineStats()
        stats.record_issue_cycles(0, cycles=10)
        stats.record_issue_cycles(2)
        stats.record_issue_cycles(4)
        assert stats.mean_issued_when_active() == 3.0

    def test_summary_renders(self):
        stats = PipelineStats()
        stats.record_issue_cycles(1)
        assert "IPC" in stats.summary()

"""Tests for barrier semantics: DSB SY, DMB ST, DMB SY."""

from repro.isa import instructions as ops
from repro.pipeline.params import CoreParams

from tests.pipeline.conftest import NVM, make_core, run_and_capture

LINE_A = NVM + 0x4000
LINE_B = NVM + 0x8000


def persist_pair(addr, tag):
    """store + cvap to one line."""
    return [
        ops.mov_imm(0, addr),
        ops.mov_imm(1, 1),
        ops.store(1, 0, addr=addr, comment="st-%s" % tag),
        ops.dc_cvap(0, addr=addr, comment="cv-%s" % tag),
    ]


class TestDsbSy:
    def test_dsb_blocks_younger_execution(self):
        trace = (persist_pair(LINE_A, "a")
                 + [ops.dsb_sy(), ops.mov_imm(5, 99)])
        _, controller, completed = run_and_capture(
            trace, warm_lines=[LINE_A])
        cvap = completed[3]
        younger_mov = completed[5]
        assert younger_mov.issue_cycle >= cvap.complete_cycle

    def test_dsb_waits_for_persist(self):
        trace = persist_pair(LINE_A, "a") + [ops.dsb_sy()]
        _, controller, completed = run_and_capture(trace, warm_lines=[LINE_A])
        dsb = completed[4]
        persist = controller.persist_log.first_with_tag("cv-a")
        assert dsb.complete_cycle >= persist.cycle

    def test_no_dsb_allows_overlap(self):
        with_dsb = (persist_pair(LINE_A, "a") + [ops.dsb_sy()]
                    + persist_pair(LINE_B, "b"))
        without = persist_pair(LINE_A, "a") + persist_pair(LINE_B, "b")
        core1, _ = make_core(with_dsb, warm_lines=[LINE_A, LINE_B])
        core2, _ = make_core(without, warm_lines=[LINE_A, LINE_B])
        assert core1.run().cycles > core2.run().cycles

    def test_dsb_penalty_adds_fixed_cost(self):
        trace = persist_pair(LINE_A, "a") + [ops.dsb_sy(), ops.mov_imm(5, 1)]
        base_core, _ = make_core(trace, warm_lines=[LINE_A])
        base = base_core.run().cycles
        slow_core, _ = make_core(
            trace, params=CoreParams(dsb_penalty=40), warm_lines=[LINE_A])
        slow = slow_core.run().cycles
        assert slow >= base + 40


class TestDmbSt:
    def test_store_after_dmb_waits_for_older_persist(self):
        trace = (persist_pair(LINE_A, "a") + [ops.dmb_st()]
                 + persist_pair(LINE_B, "b"))
        _, controller, completed = run_and_capture(
            trace, warm_lines=[LINE_A, LINE_B])
        persist_a = controller.persist_log.first_with_tag("cv-a")
        store_b = completed[7]
        assert store_b.issue_cycle >= persist_a.cycle

    def test_non_memory_work_proceeds_past_dmb(self):
        """The difference from DSB: ALU work is not blocked."""
        trace = (persist_pair(LINE_A, "a") + [ops.dmb_st()]
                 + [ops.mov_imm(9, 1)] + persist_pair(LINE_B, "b"))
        _, controller, completed = run_and_capture(
            trace, warm_lines=[LINE_A, LINE_B])
        persist_a = controller.persist_log.first_with_tag("cv-a")
        mov = completed[5]
        assert mov.execute_done_cycle < persist_a.cycle

    def test_dmb_st_cheaper_than_dsb(self):
        def body(barrier):
            trace = []
            for index, line in enumerate((LINE_A, LINE_B, NVM + 0xC000)):
                trace += persist_pair(line, str(index))
                trace.append(barrier())
                trace += [ops.mov_imm(9, index), ops.add(9, 9, imm=1),
                          ops.add(10, 9, imm=2), ops.add(11, 10, imm=3)]
            return trace
        lines = [LINE_A, LINE_B, NVM + 0xC000]
        dsb_core, _ = make_core(body(ops.dsb_sy), warm_lines=lines)
        dmb_core, _ = make_core(body(ops.dmb_st), warm_lines=lines)
        assert dmb_core.run().cycles <= dsb_core.run().cycles


class TestDmbSy:
    def test_load_after_dmb_waits_for_older_store(self):
        """The hazard-pointer pattern (Figure 12)."""
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.mov_imm(1, 42),
            ops.store(1, 0, addr=LINE_A, comment="announce"),
            ops.dmb_sy(),
            ops.mov_imm(2, LINE_B),
            ops.ldr(3, 2, addr=LINE_B),
        ]
        core, _, completed = run_and_capture(
            trace, warm_lines=[LINE_A, LINE_B])
        store = completed[2]
        load = completed[5]
        assert load.issue_cycle >= store.complete_cycle

    def test_without_dmb_load_runs_ahead(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.mov_imm(1, 42),
            ops.store(1, 0, addr=LINE_A, comment="announce"),
            ops.mov_imm(2, LINE_B),
            ops.ldr(3, 2, addr=LINE_B),
        ]
        _, _, completed = run_and_capture(trace, warm_lines=[LINE_A, LINE_B])
        store = completed[2]
        load = completed[4]
        assert load.issue_cycle < store.complete_cycle

"""Unit tests for the write buffer (srcID CAM, counters, eligibility)."""

import pytest

from repro.isa import instructions as ops
from repro.pipeline.dyninst import DynInst
from repro.pipeline.write_buffer import PUSHING, WriteBuffer


def store_dyn(seq, addr, src_ids=(), edk_def=0, edk_use=0, epoch=0):
    if edk_def or edk_use:
        inst = ops.store_ede(1, 0, edk_def=edk_def, edk_use=edk_use, addr=addr)
    else:
        inst = ops.store(1, 0, addr=addr)
    dyn = DynInst(seq, inst)
    dyn.src_ids = tuple(src_ids)
    dyn.store_epoch = epoch
    return dyn


def join_dyn(seq, src_ids=(), edk_def=3):
    dyn = DynInst(seq, ops.join(edk_def, 1, 2))
    dyn.src_ids = tuple(src_ids)
    return dyn


def always_ok(_epoch):
    return True


class TestDeposit:
    def test_space_accounting(self):
        wb = WriteBuffer(capacity=2)
        wb.deposit(store_dyn(0, 0x40), 0, enforce_src_ids=False)
        assert wb.has_space()
        wb.deposit(store_dyn(1, 0x80), 0, enforce_src_ids=False)
        assert not wb.has_space()
        with pytest.raises(RuntimeError):
            wb.deposit(store_dyn(2, 0xC0), 0, enforce_src_ids=False)

    def test_cam_clears_absent_producers(self):
        """Deposit CAM: srcIDs whose producer already left are cleared."""
        wb = WriteBuffer(capacity=4)
        entry = wb.deposit(store_dyn(5, 0x40, src_ids=(3,)), 0,
                           enforce_src_ids=True)
        assert entry.src_ids == set()

    def test_cam_keeps_resident_producers(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(3, 0x40), 0, enforce_src_ids=True)
        entry = wb.deposit(store_dyn(5, 0x80, src_ids=(3,)), 0,
                           enforce_src_ids=True)
        assert entry.src_ids == {3}

    def test_no_enforcement_drops_src_ids(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(3, 0x40), 0, enforce_src_ids=False)
        entry = wb.deposit(store_dyn(5, 0x80, src_ids=(3,)), 0,
                           enforce_src_ids=False)
        assert entry.src_ids == set()


class TestCompletion:
    def test_remove_clears_matching_src_ids(self):
        wb = WriteBuffer(capacity=4)
        producer = wb.deposit(store_dyn(3, 0x40), 0, enforce_src_ids=True)
        consumer = wb.deposit(store_dyn(5, 0x80, src_ids=(3,)), 0,
                              enforce_src_ids=True)
        wb.remove(producer)
        assert consumer.src_ids == set()

    def test_remove_frees_space(self):
        wb = WriteBuffer(capacity=1)
        entry = wb.deposit(store_dyn(0, 0x40), 0, enforce_src_ids=False)
        wb.remove(entry)
        assert wb.has_space()


class TestEligibility:
    def test_src_id_blocks_push(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(3, 0x40), 0, enforce_src_ids=True)
        wb.deposit(store_dyn(5, 0x80, src_ids=(3,)), 0, enforce_src_ids=True)
        ready = wb.eligible_entries(always_ok)
        assert [e.seq for e in ready] == [3]

    def test_same_line_blocks_younger(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(1, 0x40), 0, enforce_src_ids=False)
        wb.deposit(store_dyn(2, 0x48), 0, enforce_src_ids=False)  # same line
        ready = wb.eligible_entries(always_ok)
        assert [e.seq for e in ready] == [1]

    def test_same_line_blocks_even_while_pushing(self):
        wb = WriteBuffer(capacity=4)
        first = wb.deposit(store_dyn(1, 0x40), 0, enforce_src_ids=False)
        first.state = PUSHING
        wb.deposit(store_dyn(2, 0x48), 0, enforce_src_ids=False)
        assert wb.eligible_entries(always_ok) == []

    def test_epoch_gate(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(1, 0x40, epoch=0), 0, enforce_src_ids=False)
        wb.deposit(store_dyn(2, 0x80, epoch=1), 0, enforce_src_ids=False)
        ready = wb.eligible_entries(lambda epoch: epoch == 0)
        assert [e.seq for e in ready] == [1]

    def test_pushing_entries_not_re_selected(self):
        wb = WriteBuffer(capacity=4)
        entry = wb.deposit(store_dyn(1, 0x40), 0, enforce_src_ids=False)
        entry.state = PUSHING
        assert wb.eligible_entries(always_ok) == []

    def test_oldest_first_order(self):
        wb = WriteBuffer(capacity=4)
        for seq in (1, 2, 3):
            wb.deposit(store_dyn(seq, 0x40 * (seq + 1)), 0,
                       enforce_src_ids=False)
        ready = wb.eligible_entries(always_ok)
        assert [e.seq for e in ready] == [1, 2, 3]


class TestCounters:
    def test_key_counters_track_residency(self):
        wb = WriteBuffer(capacity=4)
        entry = wb.deposit(store_dyn(1, 0x40, edk_def=5), 0,
                           enforce_src_ids=True)
        assert wb.key_counters[5] == 1
        assert wb.total_ede == 1
        wb.remove(entry)
        assert wb.key_counters[5] == 0
        assert wb.total_ede == 0

    def test_join_counts_all_its_keys(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(join_dyn(1), 0, enforce_src_ids=True)
        assert wb.key_counters[3] == 1
        assert wb.key_counters[1] == 1
        assert wb.key_counters[2] == 1

    def test_plain_stores_do_not_count(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(1, 0x40), 0, enforce_src_ids=True)
        assert wb.total_ede == 0

    def test_older_ede_queries(self):
        wb = WriteBuffer(capacity=4)
        wb.deposit(store_dyn(1, 0x40, edk_def=5), 0, enforce_src_ids=True)
        assert wb.older_ede_with_key(5, seq=10)
        assert not wb.older_ede_with_key(6, seq=10)
        assert not wb.older_ede_with_key(5, seq=0)  # younger than the entry
        assert wb.older_ede_any(seq=10)
        assert not wb.older_ede_any(seq=0)

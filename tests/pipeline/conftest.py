"""Shared pipeline test fixtures and helpers."""

from typing import List, Optional, Sequence


from repro.core.policies import EnforcementPolicy, FENCE_POLICY
from repro.isa.instructions import Instruction, halt
from repro.memory.controller import AddressMap, MemoryController
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.params import CoreParams

NVM = AddressMap().nvm_base


def make_core(trace: Sequence[Instruction],
              policy: EnforcementPolicy = FENCE_POLICY,
              params: CoreParams = CoreParams(),
              warm_lines: Optional[List[int]] = None,
              squash_at: Sequence[int] = ()):
    """Build a core over a fresh memory system; warm the given lines."""
    trace = list(trace)
    if not trace or trace[-1].opcode.name != "HALT":
        trace.append(halt())
    controller = MemoryController()
    hierarchy = CacheHierarchy(controller)
    for line in warm_lines or ():
        for cache in (hierarchy.l3, hierarchy.l2, hierarchy.l1d):
            cache.insert(line)
    core = OutOfOrderCore(trace, hierarchy, policy, params,
                          squash_at=squash_at)
    return core, controller


def run_and_capture(trace, policy=FENCE_POLICY, params=CoreParams(),
                    warm_lines=None, squash_at=()):
    """Run a trace; return (core, controller, completed DynInsts by seq)."""
    core, controller = make_core(trace, policy, params, warm_lines, squash_at)
    completed = {}

    def capture(dyn):
        completed[dyn.seq] = dyn

    core.on_complete = capture
    core.run()
    return core, controller, completed

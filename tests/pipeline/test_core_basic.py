"""Basic out-of-order core behaviour: dataflow, widths, memory timing."""

import pytest

from repro.isa import instructions as ops
from repro.pipeline.core import SimulationError
from repro.pipeline.params import CoreParams

from tests.pipeline.conftest import NVM, make_core, run_and_capture


class TestDataflow:
    def test_dependent_chain_serializes(self):
        trace = [ops.mov_imm(0, 1)]
        for _ in range(10):
            trace.append(ops.add(0, 0, imm=1))
        core, _, completed = run_and_capture(trace)
        times = [completed[s].execute_done_cycle for s in range(11)]
        assert times == sorted(times)
        assert times[-1] - times[0] >= 10  # one cycle per chain link

    def test_independent_ops_overlap(self):
        trace = [ops.mov_imm(r, r) for r in range(8)]
        core, _, completed = run_and_capture(trace)
        cycles = {completed[s].execute_done_cycle for s in range(8)}
        # Eight independent movs at decode width 3 finish within ~4 cycles.
        assert max(cycles) - min(cycles) <= 4

    def test_mul_latency(self):
        trace = [
            ops.mov_imm(1, 3),
            ops.Instruction(ops.Opcode.MUL, dst=(2,), src=(1, 1)),
            ops.add(3, 2, imm=0),
        ]
        _, _, completed = run_and_capture(trace)
        assert (completed[2].execute_done_cycle
                - completed[1].issue_cycle) >= CoreParams().mul_latency

    def test_xzr_creates_no_dependence(self):
        trace = [
            ops.mov_imm(31, 5),           # writes discarded
            ops.add(1, 31, imm=1),        # must not wait on the mov
        ]
        _, _, completed = run_and_capture(trace)
        assert completed[1].regs_outstanding == 0


class TestWidths:
    def test_decode_width_bounds_dispatch(self):
        trace = [ops.nop() for _ in range(30)]
        core, _ = make_core(trace)
        stats = core.run()
        # 31 instructions (with HALT) at width 3 needs >= 10 cycles.
        assert stats.cycles >= 10

    def test_issue_histogram_capped_by_width(self):
        trace = [ops.mov_imm(r % 20, r) for r in range(64)]
        core, _ = make_core(trace)
        stats = core.run()
        assert max(stats.issue_histogram) <= CoreParams().issue_width

    def test_retired_equals_trace_length(self):
        trace = [ops.mov_imm(1, 1), ops.add(2, 1, imm=1)]
        core, _ = make_core(trace)
        stats = core.run()
        assert stats.retired == len(core.trace)


class TestLoads:
    def test_warm_load_is_fast(self):
        trace = [ops.mov_imm(0, NVM), ops.ldr(1, 0, addr=NVM)]
        _, _, completed = run_and_capture(trace, warm_lines=[NVM])
        load = completed[1]
        assert load.execute_done_cycle - load.issue_cycle <= 3

    def test_cold_nvm_load_is_slow(self):
        trace = [ops.mov_imm(0, NVM), ops.ldr(1, 0, addr=NVM)]
        _, _, completed = run_and_capture(trace)
        load = completed[1]
        assert load.execute_done_cycle - load.issue_cycle >= 450

    def test_store_to_load_forwarding(self):
        trace = [
            ops.mov_imm(0, NVM + 0x4000),
            ops.mov_imm(1, 77),
            ops.store(1, 0, addr=NVM + 0x4000),
            ops.ldr(2, 0, addr=NVM + 0x4000),
        ]
        _, _, completed = run_and_capture(trace)
        load = completed[3]
        # Forwarded from the in-flight store: no memory round trip.
        assert load.execute_done_cycle - load.issue_cycle <= 4

    def test_forwarding_from_stp(self):
        trace = [
            ops.mov_imm(0, NVM + 0x4000),
            ops.stp(0, 0, 0, addr=NVM + 0x4000),
            ops.ldr(2, 0, offset=8, addr=NVM + 0x4008),
        ]
        _, _, completed = run_and_capture(trace)
        load = completed[2]
        assert load.execute_done_cycle - load.issue_cycle <= 4


class TestStores:
    def test_store_completes_after_retire(self):
        trace = [
            ops.mov_imm(0, NVM),
            ops.mov_imm(1, 5),
            ops.store(1, 0, addr=NVM, comment="s"),
        ]
        _, _, completed = run_and_capture(trace, warm_lines=[NVM])
        store = completed[2]
        assert store.complete_cycle > store.retire_cycle

    def test_store_visibility_recorded(self):
        trace = [
            ops.mov_imm(0, NVM),
            ops.mov_imm(1, 5),
            ops.store(1, 0, addr=NVM, comment="tagged-store"),
        ]
        core, _ = make_core(trace, warm_lines=[NVM])
        core.run()
        assert len(core.store_visibility) == 1
        _cycle, _seq, tag, addr = core.store_visibility[0]
        assert tag == "tagged-store" and addr == NVM

    def test_untagged_store_not_recorded(self):
        trace = [ops.mov_imm(0, NVM), ops.store(0, 0, addr=NVM)]
        core, _ = make_core(trace, warm_lines=[NVM])
        core.run()
        assert core.store_visibility == []

    def test_cvap_generates_persist_event(self):
        trace = [
            ops.mov_imm(0, NVM),
            ops.mov_imm(1, 5),
            ops.store(1, 0, addr=NVM),
            ops.dc_cvap(0, addr=NVM, comment="p"),
        ]
        _, controller, _ = run_and_capture(trace, warm_lines=[NVM])
        assert controller.persist_log.first_with_tag("p") is not None

    def test_same_line_stores_commit_in_order(self):
        trace = [ops.mov_imm(0, NVM)]
        for value in range(4):
            trace.append(ops.mov_imm(1, value))
            trace.append(ops.store(1, 0, addr=NVM, comment="s%d" % value))
        core, _ = make_core(trace, warm_lines=[NVM])
        core.run()
        cycles = [c for c, _s, _t, _a in core.store_visibility]
        assert cycles == sorted(cycles)


class TestErrors:
    def test_trace_must_end_with_halt(self):
        from repro.memory.controller import MemoryController
        from repro.memory.hierarchy import CacheHierarchy
        from repro.pipeline.core import OutOfOrderCore
        with pytest.raises(ValueError):
            OutOfOrderCore([ops.nop()], CacheHierarchy(MemoryController()))

    def test_max_cycles_guard(self):
        trace = [ops.mov_imm(0, NVM), ops.ldr(1, 0, addr=NVM)]
        core, _ = make_core(trace)
        with pytest.raises(SimulationError):
            core.run(max_cycles=3)

"""Tests for EDE enforcement in the pipeline: IQ and WB designs,
JOIN, WAIT_KEY and WAIT_ALL_KEYS."""

from repro.core.policies import FENCE_POLICY, IQ_POLICY, WB_POLICY
from repro.isa import instructions as ops

from tests.pipeline.conftest import NVM, make_core, run_and_capture

LINE_A = NVM + 0x4000
LINE_B = NVM + 0x8000
LINE_C = NVM + 0xC000
LINE_D = NVM + 0x10000
ALL_LINES = [LINE_A, LINE_B, LINE_C, LINE_D]


def producer_consumer_trace(key=1):
    """cvap(A) produces EDK#key; str(B) consumes it (Figure 7)."""
    return [
        ops.mov_imm(0, LINE_A),
        ops.mov_imm(1, 1),
        ops.store(1, 0, addr=LINE_A),
        ops.dc_cvap_ede(0, edk_def=key, edk_use=0, addr=LINE_A,
                        comment="producer"),
        ops.mov_imm(2, LINE_B),
        ops.mov_imm(3, 2),
        ops.store_ede(3, 2, edk_def=0, edk_use=key, addr=LINE_B,
                      comment="consumer"),
    ]


class TestIqEnforcement:
    def test_consumer_issue_delayed_until_producer_completes(self):
        _, controller, completed = run_and_capture(
            producer_consumer_trace(), policy=IQ_POLICY, warm_lines=ALL_LINES)
        producer = completed[3]
        consumer = completed[6]
        assert consumer.issue_cycle >= producer.complete_cycle

    def test_independent_younger_instructions_still_issue(self):
        trace = producer_consumer_trace() + [ops.mov_imm(9, 5)]
        _, controller, completed = run_and_capture(
            trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        producer = completed[3]
        mov = completed[7]
        assert mov.execute_done_cycle < producer.complete_cycle


class TestWbEnforcement:
    def test_consumer_issues_and_retires_without_stall(self):
        _, controller, completed = run_and_capture(
            producer_consumer_trace(), policy=WB_POLICY, warm_lines=ALL_LINES)
        producer = completed[3]
        consumer = completed[6]
        assert consumer.issue_cycle < producer.complete_cycle
        assert consumer.retire_cycle < producer.complete_cycle

    def test_consumer_push_still_ordered(self):
        core, controller, completed = run_and_capture(
            producer_consumer_trace(), policy=WB_POLICY, warm_lines=ALL_LINES)
        producer = completed[3]
        visibility = {t: c for c, _s, t, _a in core.store_visibility}
        assert visibility["consumer"] >= producer.complete_cycle

    def test_wb_faster_than_iq_on_figure8_pattern(self):
        """Figure 8: IQ serializes the two independent pairs via retire
        order; WB overlaps them."""
        trace = []
        for index, (src, dst) in enumerate(((LINE_A, LINE_B),
                                            (LINE_C, LINE_D))):
            key = index + 1
            trace += [
                ops.mov_imm(0, src),
                ops.mov_imm(1, index),
                ops.store(1, 0, addr=src),
                ops.dc_cvap_ede(0, edk_def=key, edk_use=0, addr=src),
                ops.mov_imm(2, dst),
                ops.mov_imm(3, index),
                ops.store_ede(3, 2, edk_def=0, edk_use=key, addr=dst),
            ]
        iq_core, _ = make_core(trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        wb_core, _ = make_core(trace, policy=WB_POLICY, warm_lines=ALL_LINES)
        assert wb_core.run().cycles < iq_core.run().cycles


class TestNoEnforcement:
    def test_fence_policy_ignores_ede_annotations(self):
        """Under the fence-only policy EDE carries no ordering (the
        configuration relies on the fences the program contains)."""
        _, controller, completed = run_and_capture(
            producer_consumer_trace(), policy=FENCE_POLICY,
            warm_lines=ALL_LINES)
        producer = completed[3]
        consumer = completed[6]
        assert consumer.complete_cycle < producer.complete_cycle

    def test_zero_key_consumer_not_ordered(self):
        trace = producer_consumer_trace()
        trace[6] = ops.store_ede(3, 2, edk_def=0, edk_use=0, addr=LINE_B,
                                 comment="consumer")
        _, controller, completed = run_and_capture(
            trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        assert completed[6].complete_cycle < completed[3].complete_cycle

    def test_consumer_without_live_producer_not_ordered(self):
        trace = [
            ops.mov_imm(2, LINE_B),
            ops.mov_imm(3, 2),
            ops.store_ede(3, 2, edk_def=0, edk_use=7, addr=LINE_B),
        ]
        core, _ = make_core(trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        stats = core.run()
        assert stats.retired == len(core.trace)


class TestKeyReuse:
    def test_redefined_key_links_to_newest_producer(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=LINE_A,
                            comment="old-producer"),
            ops.mov_imm(1, LINE_C),
            ops.dc_cvap_ede(1, edk_def=1, edk_use=0, addr=LINE_C,
                            comment="new-producer"),
            ops.mov_imm(2, LINE_B),
            ops.mov_imm(3, 2),
            ops.store_ede(3, 2, edk_def=0, edk_use=1, addr=LINE_B,
                          comment="consumer"),
        ]
        _, controller, completed = run_and_capture(
            trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        newest = completed[3]
        consumer = completed[6]
        assert consumer.issue_cycle >= newest.complete_cycle

    def test_one_producer_many_consumers(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=LINE_A),
            ops.mov_imm(2, LINE_B),
            ops.mov_imm(3, 2),
            ops.store_ede(3, 2, edk_def=0, edk_use=3, addr=LINE_B),
            ops.mov_imm(4, LINE_C),
            ops.store_ede(3, 4, edk_def=0, edk_use=3, addr=LINE_C),
        ]
        _, _, completed = run_and_capture(
            trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        producer = completed[1]
        for consumer_seq in (4, 6):
            assert completed[consumer_seq].issue_cycle >= producer.complete_cycle


class TestJoin:
    def _join_trace(self):
        return [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=LINE_A,
                            comment="p1"),
            ops.mov_imm(1, LINE_B),
            ops.dc_cvap_ede(1, edk_def=2, edk_use=0, addr=LINE_B,
                            comment="p2"),
            ops.join(3, 1, 2),
            ops.mov_imm(2, LINE_C),
            ops.mov_imm(3, 5),
            ops.store_ede(3, 2, edk_def=0, edk_use=3, addr=LINE_C,
                          comment="sink"),
        ]

    def test_join_waits_for_both_producers(self):
        for policy in (IQ_POLICY, WB_POLICY):
            core, controller, completed = run_and_capture(
                self._join_trace(), policy=policy, warm_lines=ALL_LINES)
            join = completed[4]
            assert join.complete_cycle >= completed[1].complete_cycle
            assert join.complete_cycle >= completed[3].complete_cycle

    def test_sink_waits_for_join(self):
        for policy in (IQ_POLICY, WB_POLICY):
            core, controller, completed = run_and_capture(
                self._join_trace(), policy=policy, warm_lines=ALL_LINES)
            join = completed[4]
            visibility = {t: c for c, _s, t, _a in core.store_visibility}
            assert visibility["sink"] >= join.complete_cycle


class TestWaits:
    def test_wait_key_blocks_retire_until_key_completes(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=5, edk_use=0, addr=LINE_A,
                            comment="p"),
            ops.wait_key(5),
            ops.mov_imm(9, 1),
        ]
        for policy in (IQ_POLICY, WB_POLICY):
            _, controller, completed = run_and_capture(
                trace, policy=policy, warm_lines=ALL_LINES)
            wait = completed[2]
            producer = completed[1]
            assert wait.retire_cycle >= producer.complete_cycle

    def test_wait_key_ignores_other_keys(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=5, edk_use=0, addr=LINE_A,
                            comment="p"),
            ops.wait_key(6),
        ]
        _, _, completed = run_and_capture(
            trace, policy=WB_POLICY, warm_lines=ALL_LINES)
        wait = completed[2]
        producer = completed[1]
        assert wait.retire_cycle < producer.complete_cycle

    def test_wait_all_keys_waits_for_everything(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=LINE_A),
            ops.mov_imm(1, LINE_B),
            ops.dc_cvap_ede(1, edk_def=9, edk_use=0, addr=LINE_B),
            ops.wait_all_keys(),
        ]
        for policy in (IQ_POLICY, WB_POLICY):
            _, _, completed = run_and_capture(
                trace, policy=policy, warm_lines=ALL_LINES)
            wait = completed[4]
            assert wait.retire_cycle >= completed[1].complete_cycle
            assert wait.retire_cycle >= completed[3].complete_cycle

    def test_consumer_after_wait_all_keys_is_ordered_behind_it(self):
        trace = [
            ops.mov_imm(0, LINE_A),
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=LINE_A),
            ops.wait_all_keys(),
            ops.mov_imm(2, LINE_B),
            ops.mov_imm(3, 1),
            ops.store_ede(3, 2, edk_def=0, edk_use=1, addr=LINE_B,
                          comment="after"),
        ]
        core, _, completed = run_and_capture(
            trace, policy=WB_POLICY, warm_lines=ALL_LINES)
        wait = completed[2]
        visibility = {t: c for c, _s, t, _a in core.store_visibility}
        assert visibility["after"] >= wait.complete_cycle


class TestEdmIntegration:
    def test_edm_entry_cleared_after_completion(self):
        trace = producer_consumer_trace()
        core, _ = make_core(trace, policy=IQ_POLICY, warm_lines=ALL_LINES)
        core.run()
        assert len(core.edm.spec) == 0
        assert len(core.edm.non_spec) == 0

    def test_wb_counters_return_to_zero(self):
        trace = producer_consumer_trace() + [ops.wait_all_keys()]
        core, _ = make_core(trace, policy=WB_POLICY, warm_lines=ALL_LINES)
        core.run()
        assert core.wb.total_ede == 0
        assert all(v == 0 for v in core.wb.key_counters.values())

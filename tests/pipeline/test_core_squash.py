"""Tests for squash injection and EDM checkpoint recovery (Section V-A1)."""

from repro.core.policies import IQ_POLICY, WB_POLICY
from repro.isa import instructions as ops

from tests.pipeline.conftest import NVM, make_core

LINE_A = NVM + 0x4000
LINE_B = NVM + 0x8000
LINES = [LINE_A, LINE_B]


def ede_trace():
    return [
        ops.mov_imm(0, LINE_A),
        ops.mov_imm(1, 1),
        ops.store(1, 0, addr=LINE_A),
        ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=LINE_A, comment="p"),
        ops.mov_imm(2, LINE_B),
        ops.mov_imm(3, 2),
        ops.store_ede(3, 2, edk_def=0, edk_use=1, addr=LINE_B, comment="c"),
        ops.wait_all_keys(),
    ]


class TestSquashRecovery:
    def test_run_completes_after_squash(self):
        core, _ = make_core(ede_trace(), policy=WB_POLICY,
                            warm_lines=LINES, squash_at=[5])
        stats = core.run()
        assert stats.squashes == 1
        # Squashed instructions are refetched, so more retire than the
        # no-squash count only if flushed; total retired >= trace length.
        assert stats.retired >= len(ede_trace()) + 1

    def test_ordering_preserved_across_squash(self):
        """After the squash, refetched consumers must still link to the
        producer through the restored (and repaired) EDM."""
        for policy in (IQ_POLICY, WB_POLICY):
            core, controller = make_core(
                ede_trace(), policy=policy, warm_lines=LINES, squash_at=[5])
            completions = {}

            def capture(dyn, completions=completions):
                if dyn.inst.comment:
                    completions[dyn.inst.comment] = dyn.complete_cycle

            core.on_complete = capture
            core.run()
            assert completions["c"] >= completions["p"]

    def test_cycles_similar_to_clean_run(self):
        clean_core, _ = make_core(ede_trace(), policy=WB_POLICY,
                                  warm_lines=LINES)
        clean = clean_core.run().cycles
        squashed_core, _ = make_core(ede_trace(), policy=WB_POLICY,
                                     warm_lines=LINES, squash_at=[5])
        squashed = squashed_core.run().cycles
        assert squashed >= clean
        assert squashed < clean + 500

    def test_multiple_squashes(self):
        core, _ = make_core(ede_trace(), policy=WB_POLICY,
                            warm_lines=LINES, squash_at=[3, 6])
        stats = core.run()
        assert stats.squashes == 2

    def test_edm_clean_after_squashed_run(self):
        core, _ = make_core(ede_trace(), policy=WB_POLICY,
                            warm_lines=LINES, squash_at=[5])
        core.run()
        assert len(core.edm.spec) == 0

    def test_squash_at_start_is_harmless(self):
        core, _ = make_core(ede_trace(), policy=IQ_POLICY,
                            warm_lines=LINES, squash_at=[0])
        stats = core.run()
        assert stats.retired == len(core.trace)

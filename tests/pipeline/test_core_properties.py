"""Property-based tests: the EDE ordering invariant on random programs.

The central invariant (Section III-A): the effects of a dependence
consumer must not be observable before its producer completes — under both
hardware designs, for arbitrary interleavings of producers, consumers,
plain stores, loads, JOINs and WAITs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.edm import ExecutionDependenceMap
from repro.core.policies import IQ_POLICY, WB_POLICY
from repro.isa import instructions as ops

from tests.pipeline.conftest import NVM, make_core

_LINES = [NVM + 0x40000 + 64 * i for i in range(24)]


@st.composite
def random_ede_program(draw):
    """A random mix of EDE producers/consumers over distinct lines."""
    length = draw(st.integers(min_value=2, max_value=24))
    trace = []
    line_index = 0
    for position in range(length):
        kind = draw(st.sampled_from(
            ["producer", "consumer", "both", "store", "load", "join",
             "wait_key", "wait_all"]))
        line = _LINES[line_index % len(_LINES)]
        line_index += 1
        key = draw(st.integers(min_value=1, max_value=4))
        key2 = draw(st.integers(min_value=1, max_value=4))
        tag = "i%d" % position
        if kind == "producer":
            trace.append(ops.mov_imm(0, line))
            trace.append(ops.dc_cvap_ede(0, edk_def=key, edk_use=0,
                                         addr=line, comment=tag))
        elif kind == "consumer":
            trace.append(ops.mov_imm(1, line))
            trace.append(ops.store_ede(0, 1, edk_def=0, edk_use=key,
                                       addr=line, comment=tag))
        elif kind == "both":
            trace.append(ops.mov_imm(1, line))
            trace.append(ops.store_ede(0, 1, edk_def=key2, edk_use=key,
                                       addr=line, comment=tag))
        elif kind == "store":
            trace.append(ops.mov_imm(1, line))
            trace.append(ops.store(0, 1, addr=line, comment=tag))
        elif kind == "load":
            trace.append(ops.mov_imm(1, line))
            trace.append(ops.ldr(2, 1, addr=line))
        elif kind == "join":
            trace.append(ops.join(key2, key, 0))
        elif kind == "wait_key":
            trace.append(ops.wait_key(key))
        else:
            trace.append(ops.wait_all_keys())
    return trace


def expected_execution_edges(trace):
    """Architectural producer->consumer pairs, derived with a model EDM."""
    edm = ExecutionDependenceMap()
    edges = []
    for index, inst in enumerate(trace):
        if not inst.is_ede:
            continue
        if inst.opcode is ops.Opcode.WAIT_ALL_KEYS:
            for key in range(1, 16):
                edm.define(key, index)
            continue
        for key in inst.consumer_keys():
            producer = edm.lookup(key)
            if producer is not None:
                edges.append((producer, index))
        edm.define(inst.edk_def, index)
    return edges


class TestOrderingInvariant:
    @settings(max_examples=40, deadline=None)
    @given(random_ede_program())
    def test_consumer_never_observable_before_producer(self, trace):
        edges = expected_execution_edges(trace)
        for policy in (IQ_POLICY, WB_POLICY):
            core, controller = make_core(
                list(trace), policy=policy, warm_lines=_LINES)
            complete_cycle = {}

            def capture(dyn, complete_cycle=complete_cycle):
                complete_cycle[dyn.seq] = dyn.complete_cycle

            core.on_complete = capture
            stats = core.run()
            assert stats.retired == len(core.trace)

            # Map trace positions back to dynamic seqs (1:1, no squash).
            for producer_pos, consumer_pos in edges:
                producer_seq = producer_pos
                consumer_seq = consumer_pos
                producer = core.trace[producer_pos]
                consumer = core.trace[consumer_pos]
                if not (producer.is_ede and producer.is_producer):
                    continue
                if consumer.opcode in (ops.Opcode.WAIT_KEY,
                                       ops.Opcode.WAIT_ALL_KEYS):
                    continue
                assert complete_cycle[consumer_seq] >= \
                    complete_cycle[producer_seq], (
                        "consumer @%d completed before producer @%d under %s"
                        % (consumer_pos, producer_pos, policy.name))

    @settings(max_examples=25, deadline=None)
    @given(random_ede_program())
    def test_no_deadlock_and_full_retirement(self, trace):
        for policy in (IQ_POLICY, WB_POLICY):
            core, _ = make_core(list(trace), policy=policy,
                                warm_lines=_LINES)
            stats = core.run(max_cycles=2_000_000)
            assert stats.retired == len(core.trace)

    @settings(max_examples=20, deadline=None)
    @given(random_ede_program(),
           st.integers(min_value=0, max_value=20))
    def test_squash_does_not_break_ordering(self, trace, squash_point):
        edges = expected_execution_edges(trace)
        core, _ = make_core(list(trace), policy=WB_POLICY,
                            warm_lines=_LINES,
                            squash_at=[min(squash_point, len(trace))])
        by_comment = {}

        def capture(dyn, by_comment=by_comment):
            if dyn.inst.comment:
                by_comment[dyn.inst.comment] = dyn.complete_cycle

        core.on_complete = capture
        core.run(max_cycles=2_000_000)
        for producer_pos, consumer_pos in edges:
            producer = trace[producer_pos]
            consumer = trace[consumer_pos]
            if producer.comment in by_comment and consumer.comment in by_comment:
                if consumer.opcode in (ops.Opcode.WAIT_KEY,
                                       ops.Opcode.WAIT_ALL_KEYS,
                                       ops.Opcode.JOIN):
                    continue
                assert by_comment[consumer.comment] >= \
                    by_comment[producer.comment]

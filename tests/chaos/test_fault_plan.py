"""The fault plan itself: determinism, once-only firing, serialization."""

import json
import os

import pytest

from repro.chaos import (
    ChaosError,
    FaultPlan,
    FaultSpec,
    KILL_EXIT_CODE,
    chaos_active,
    chaos_point,
    in_worker_process,
    pick_victim,
    summarize_state,
)


def plan_with(tmp_path, *faults, seed=0):
    return FaultPlan(faults=list(faults), state_dir=str(tmp_path / "state"),
                     seed=seed)


class TestFaultSpec:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            FaultSpec(point="worker", action="explode")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(point="worker", action="raise", times=0)


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        plan = plan_with(
            tmp_path,
            FaultSpec(point="worker", action="kill", match="update/*"),
            FaultSpec(point="store", action="bitflip", match="trace:*",
                      times=2),
            seed=7)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_install_roundtrips_through_env(self, tmp_path):
        plan = plan_with(tmp_path,
                         FaultSpec(point="run_one", action="raise"))
        env = {}
        with plan.installed(env):
            assert FaultPlan.from_env(env) == plan
            assert os.path.isdir(plan.state_dir)
        assert "REPRO_CHAOS" not in env

    def test_from_env_accepts_a_file_path(self, tmp_path):
        plan = plan_with(tmp_path, FaultSpec(point="build", action="raise"))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_env({"REPRO_CHAOS": str(path)}) == plan

    def test_from_env_absent(self):
        assert FaultPlan.from_env({}) is None


class TestFiring:
    def test_once_only_across_calls(self, tmp_path):
        plan = plan_with(tmp_path, FaultSpec(point="worker", action="raise"))
        plan.install({})
        with pytest.raises(ChaosError, match=r"worker\[update/fence\]"):
            plan.fire("worker", "update/fence")
        plan.fire("worker", "update/fence")  # budget spent: silent
        plan.fire("worker", "swap/fence")

    def test_times_budget(self, tmp_path):
        plan = plan_with(tmp_path,
                         FaultSpec(point="worker", action="raise", times=2))
        plan.install({})
        for _ in range(2):
            with pytest.raises(ChaosError):
                plan.fire("worker", "x")
        plan.fire("worker", "x")  # third hit: nothing left

    def test_match_filters_labels(self, tmp_path):
        plan = plan_with(tmp_path, FaultSpec(point="worker", action="raise",
                                             match="update/*"))
        plan.install({})
        plan.fire("worker", "swap/fence")  # no match, no fire
        with pytest.raises(ChaosError):
            plan.fire("worker", "update/fence")

    def test_point_must_match(self, tmp_path):
        plan = plan_with(tmp_path, FaultSpec(point="store", action="raise"))
        plan.install({})
        plan.fire("worker", "anything")  # different point

    def test_kill_demoted_in_main_process(self, tmp_path):
        # If this were a real os._exit the test run would vanish.
        assert not in_worker_process()
        plan = plan_with(tmp_path, FaultSpec(point="worker", action="kill"))
        plan.install({})
        with pytest.raises(ChaosError, match="demoted"):
            plan.fire("worker", "update/fence")

    def test_file_action_skipped_without_path(self, tmp_path):
        plan = plan_with(tmp_path,
                         FaultSpec(point="store", action="truncate"))
        plan.install({})
        plan.fire("store", "result:abc", path=None)  # no file, no claim
        assert summarize_state(plan) == {"store[*]:truncate": 0}

    def test_truncate_damages_the_file(self, tmp_path):
        plan = plan_with(tmp_path,
                         FaultSpec(point="store", action="truncate"))
        plan.install({})
        victim = tmp_path / "entry.pkl"
        victim.write_bytes(b"x" * 1000)
        plan.fire("store", "result:abc", path=victim)
        assert 0 < len(victim.read_bytes()) < 1000

    def test_bitflip_is_deterministic_in_the_seed(self, tmp_path):
        original = bytes(range(256)) * 4
        damaged = []
        for attempt in range(2):
            plan = FaultPlan(
                faults=[FaultSpec(point="store", action="bitflip")],
                state_dir=str(tmp_path / ("s%d" % attempt)), seed=99)
            plan.install({})
            victim = tmp_path / ("f%d" % attempt)
            victim.write_bytes(original)
            plan.fire("store", "trace:k", path=victim)
            damaged.append(victim.read_bytes())
        assert damaged[0] == damaged[1] != original


class TestChaosPoint:
    def test_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert not chaos_active()
        chaos_point("worker", "update/fence")  # must be silent

    def test_fires_installed_plan(self, tmp_path, monkeypatch):
        plan = plan_with(tmp_path, FaultSpec(point="worker", action="raise"))
        monkeypatch.setenv("REPRO_CHAOS", plan.to_json())
        os.makedirs(plan.state_dir, exist_ok=True)
        assert chaos_active()
        with pytest.raises(ChaosError):
            chaos_point("worker", "update/fence")
        chaos_point("worker", "update/fence")  # spent

    def test_summarize_state_counts_firings(self, tmp_path):
        plan = plan_with(tmp_path,
                         FaultSpec(point="worker", action="raise", times=3))
        plan.install({})
        for _ in range(2):
            with pytest.raises(ChaosError):
                plan.fire("worker", "x")
        assert summarize_state(plan) == {"worker[*]:raise": 2}


class TestHelpers:
    def test_pick_victim_deterministic_and_order_free(self):
        options = ["swap/ede", "update/fence", "btree/none"]
        first = pick_victim(options, seed=5)
        second = pick_victim(list(reversed(options)), seed=5)
        assert first == second in options
        with pytest.raises(ValueError):
            pick_victim([], seed=5)

    def test_kill_exit_code_is_distinctive(self):
        assert KILL_EXIT_CODE == 77

    def test_plan_json_is_stable(self, tmp_path):
        plan = plan_with(tmp_path, FaultSpec(point="worker", action="raise"))
        assert json.loads(plan.to_json())["seed"] == 0

"""Tests for the deterministic network fault-injection proxy.

A tiny echo HTTP server sits behind a :class:`FaultProxy`; every test
drives real TCP through the proxy and asserts on what the *client*
observes — refusal, latency, a mid-body reset, a truncated-but-clean
close, a one-way partition — plus the proxy's exact firing counts.
"""

import asyncio
import time

import pytest

from repro.chaos.netproxy import (
    ENV_VAR,
    FaultProxy,
    NetFaultPlan,
    NetFaultSpec,
    ThreadedFaultProxy,
)
from repro.service.http import BaseHttpServer, ThreadedHttpServer, http_fetch

#: Fat payload so truncation budgets land mid-body, past the ~90-byte
#: response head.
_ECHO_PAYLOAD = "x" * 400


class _EchoServer(BaseHttpServer):
    async def _route(self, method, target, headers, body, writer):
        self._respond(writer, 200, {"path": target, "echo": _ECHO_PAYLOAD,
                                    "len": len(body)})


class _ThreadedEcho(ThreadedHttpServer):
    thread_name = "repro-echo"

    def _build(self) -> _EchoServer:
        return _EchoServer(**self._kwargs)


@pytest.fixture()
def echo():
    with _ThreadedEcho() as server:
        yield server


def _proxy(echo, *faults, seed=0):
    plan = NetFaultPlan(faults=list(faults), seed=seed)
    return ThreadedFaultProxy(upstream_host="127.0.0.1",
                              upstream_port=echo.port, plan=plan)


def _fetch(port, path="/ping", timeout=5.0):
    return asyncio.run(
        http_fetch("127.0.0.1", port, "GET", path, timeout=timeout))


class TestPassThrough:
    def test_clean_relay_is_transparent(self, echo):
        with _proxy(echo) as proxied:
            status, _, body = _fetch(proxied.port, "/hello")
            stats = proxied.stats()
        direct_status, _, direct_body = _fetch(echo.port, "/hello")
        assert status == direct_status == 200
        assert body == direct_body
        assert stats["connections"] == 1
        assert all(stats[action] == 0
                   for action in ("refuse", "reset", "truncate", "blackhole"))


class TestRefuse:
    def test_first_connection_refused_then_clean(self, echo):
        with _proxy(echo, NetFaultSpec(action="refuse", times=1)) as proxied:
            with pytest.raises((ConnectionError, OSError)):
                _fetch(proxied.port)
            status, _, _ = _fetch(proxied.port)
            assert status == 200
            assert proxied.stats()["refuse"] == 1

    def test_unlimited_refusal(self, echo):
        with _proxy(echo, NetFaultSpec(action="refuse", times=-1)) as proxied:
            for _ in range(3):
                with pytest.raises((ConnectionError, OSError)):
                    _fetch(proxied.port)
            assert proxied.stats()["refuse"] == 3

    def test_after_conns_arms_late(self, echo):
        spec = NetFaultSpec(action="refuse", times=1, after_conns=1)
        with _proxy(echo, spec) as proxied:
            assert _fetch(proxied.port)[0] == 200      # conn 0: clean
            with pytest.raises((ConnectionError, OSError)):
                _fetch(proxied.port)                   # conn 1: refused
            assert _fetch(proxied.port)[0] == 200      # budget spent


class TestLatency:
    def test_fixed_delay_then_clean(self, echo):
        spec = NetFaultSpec(action="latency", times=1, delay_s=0.3)
        with _proxy(echo, spec) as proxied:
            start = time.monotonic()
            assert _fetch(proxied.port)[0] == 200
            slow = time.monotonic() - start
            start = time.monotonic()
            assert _fetch(proxied.port)[0] == 200
            fast = time.monotonic() - start
        assert slow >= 0.3
        assert fast < 0.3

    def test_jitter_is_seed_deterministic(self):
        plan = NetFaultPlan(
            faults=[NetFaultSpec(action="latency", times=2, jitter_s=0.5)],
            seed=7)
        first = FaultProxy("localhost", 1, plan=plan)
        second = FaultProxy("localhost", 1, plan=plan)
        for conn in range(2):
            (_, rng_a), = first._claim_faults(conn)
            (_, rng_b), = second._claim_faults(conn)
            assert rng_a.uniform(0, 0.5) == rng_b.uniform(0, 0.5)
        # Budget of 2 is spent: the third connection claims nothing.
        assert first._claim_faults(2) == []
        assert first.fired["latency"] == 2


class TestCuts:
    def test_truncate_is_a_clean_short_close(self, echo):
        # 120 bytes covers the response head and cuts mid-body, so the
        # client sees a Content-Length it can never satisfy.  The HTTP
        # client must surface that as a transport error (OSError), not
        # hand back a short body.
        spec = NetFaultSpec(action="truncate", times=1, after_bytes=120,
                            direction="s2c")
        with _proxy(echo, spec) as proxied:
            with pytest.raises(OSError, match="truncated"):
                _fetch(proxied.port)
            assert proxied.stats()["truncate"] == 1
            assert _fetch(proxied.port)[0] == 200

    def test_reset_aborts_mid_body(self, echo):
        spec = NetFaultSpec(action="reset", times=1, after_bytes=0,
                            direction="s2c")
        with _proxy(echo, spec) as proxied:
            with pytest.raises((ConnectionError, OSError)):
                _fetch(proxied.port)
            assert proxied.stats()["reset"] == 1


class TestBlackhole:
    @pytest.mark.parametrize("direction", ["c2s", "s2c"])
    def test_one_way_partition_times_out(self, echo, direction):
        spec = NetFaultSpec(action="blackhole", times=1,
                            direction=direction)
        with _proxy(echo, spec) as proxied:
            with pytest.raises(asyncio.TimeoutError):
                _fetch(proxied.port, timeout=0.5)
            assert proxied.stats()["blackhole"] == 1
            assert _fetch(proxied.port)[0] == 200


class TestPlanSwap:
    def test_set_plan_lifts_faults_mid_run(self, echo):
        with _proxy(echo, NetFaultSpec(action="refuse", times=-1)) as proxied:
            with pytest.raises((ConnectionError, OSError)):
                _fetch(proxied.port)
            proxied.set_plan(NetFaultPlan(faults=[]))
            assert _fetch(proxied.port)[0] == 200


class TestPlanSerialization:
    def test_json_roundtrip(self):
        plan = NetFaultPlan(
            faults=[NetFaultSpec(action="latency", times=3, delay_s=0.1,
                                 jitter_s=0.2),
                    NetFaultSpec(action="truncate", after_bytes=99,
                                 direction="c2s")],
            seed=42)
        assert NetFaultPlan.from_json(plan.to_json()) == plan

    def test_from_env_inline_and_path(self, tmp_path):
        plan = NetFaultPlan(faults=[NetFaultSpec(action="refuse")], seed=1)
        environ = {ENV_VAR: plan.to_json()}
        assert NetFaultPlan.from_env(environ) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert NetFaultPlan.from_env({ENV_VAR: str(path)}) == plan
        assert NetFaultPlan.from_env({}) is None

    def test_installed_context_manager(self):
        plan = NetFaultPlan(faults=[], seed=9)
        environ = {}
        with plan.installed(environ):
            assert NetFaultPlan.from_env(environ) == plan
        assert ENV_VAR not in environ

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError, match="unknown network fault"):
            NetFaultSpec(action="explode")
        with pytest.raises(ValueError, match="direction"):
            NetFaultSpec(action="reset", direction="up")
        with pytest.raises(ValueError, match="times"):
            NetFaultSpec(action="refuse", times=0)

"""Acceptance: the supervised matrix converges under injected chaos.

The seeded fault plan kills a worker mid-group, truncates a freshly
written result-cache entry and bit-flips a trace-cache entry — all during
one matrix run — and the run must still complete with results
bit-identical to a clean serial run, with the retries and pool respawns
recorded in the :class:`~repro.harness.supervisor.MatrixReport`.  A
second, warm run must then self-heal the damaged cache entries.
"""

import pytest

from repro.chaos import FaultPlan, FaultSpec, summarize_state
from repro.harness import CONFIGURATIONS, run_matrix
from repro.harness.parallel import last_matrix_report, run_matrix_parallel
from repro.harness.supervisor import SupervisorError
from repro.workloads import TEST_SCALE, base as workload_base

APPS = ["update", "swap"]
CONFIGS = list(CONFIGURATIONS)
N_MODES = len({config.fence_mode for config in CONFIGS})
N_CELLS = len(APPS) * len(CONFIGS)


@pytest.fixture(scope="module")
def serial_matrix():
    """The clean, uncached, in-process reference run."""
    return run_matrix(APPS, CONFIGS, TEST_SCALE, parallel=False)


def assert_bit_identical(results, reference):
    assert list(results) == list(reference)
    for app in reference:
        assert list(results[app]) == list(reference[app])
        for name in reference[app]:
            chaotic = results[app][name]
            clean = reference[app][name]
            assert chaotic.cycles == clean.cycles, (app, name)
            assert chaotic.ipc == clean.ipc, (app, name)
            assert (chaotic.stats.issue_histogram
                    == clean.stats.issue_histogram), (app, name)
            assert (chaotic.nvm_pending_samples
                    == clean.nvm_pending_samples), (app, name)
            assert (chaotic.consistency.verdict
                    == clean.consistency.verdict), (app, name)


class TestConvergenceUnderChaos:
    def test_kill_plus_cache_corruption(self, tmp_path, serial_matrix):
        plan = FaultPlan(
            faults=[
                FaultSpec(point="worker", action="kill", match="update/*"),
                FaultSpec(point="store", action="truncate",
                          match="result:*"),
                FaultSpec(point="store", action="bitflip", match="trace:*"),
            ],
            state_dir=str(tmp_path / "chaos-state"),
            seed=2021)
        with plan.installed():
            results = run_matrix_parallel(
                APPS, CONFIGS, TEST_SCALE, max_workers=2,
                cache=True, cache_dir=tmp_path / "cache",
                retries=3, backoff=0.01)

        # Despite a murdered worker and two corrupted cache entries, the
        # matrix converged to the clean serial results, bit for bit.
        assert_bit_identical(results, serial_matrix)

        # Every fault actually fired (the plan wasn't a no-op).
        spent = summarize_state(plan)
        assert spent["worker[update/*]:kill"] == 1
        assert spent["store[result:*]:truncate"] == 1
        assert spent["store[trace:*]:bitflip"] == 1

        # The execution story is on the record.
        report = last_matrix_report()
        assert report is not None and report.all_succeeded
        assert report.pool_respawns >= 1
        assert report.total_retries >= 1
        killed = [g for g in report.groups if g.group.startswith("update/")]
        assert any(len(g.attempts) > 1 for g in killed)

        # Warm self-heal: the truncated result entry and the bit-flipped
        # trace entry read as misses, get recomputed, and the warm run is
        # again bit-identical.
        warm = run_matrix_parallel(
            APPS, CONFIGS, TEST_SCALE, max_workers=2,
            cache=True, cache_dir=tmp_path / "cache")
        assert_bit_identical(warm, serial_matrix)
        # Exactly one result entry was damaged, so exactly one cell
        # re-simulated; the rest resumed from the cache.
        assert last_matrix_report().resumed_from_cache == N_CELLS - 1

    def test_stall_blows_the_timeout_and_retries(self, tmp_path,
                                                 serial_matrix):
        plan = FaultPlan(
            faults=[FaultSpec(point="run_one", action="stall",
                              seconds=10.0)],
            state_dir=str(tmp_path / "stall-state"),
            seed=3)
        with plan.installed():
            results = run_matrix_parallel(
                APPS, CONFIGS, TEST_SCALE, max_workers=2,
                cache=False, timeout=1.0, retries=2, backoff=0.01)
        assert_bit_identical(results, serial_matrix)
        report = last_matrix_report()
        assert report.all_succeeded
        outcomes = [a.outcome for g in report.groups for a in g.attempts]
        assert "timeout" in outcomes


class TestInterruptedMatrixResumes:
    def test_resume_re_simulates_only_unfinished_groups(self, tmp_path,
                                                        serial_matrix):
        # Every attempt at a swap group fails: the matrix is "interrupted"
        # with update's groups already persisted to the result cache.
        plan = FaultPlan(
            faults=[FaultSpec(point="worker", action="raise",
                              match="swap/*", times=99)],
            state_dir=str(tmp_path / "raise-state"),
            seed=1)
        before = workload_base.BUILD_COUNT
        with plan.installed():
            with pytest.raises(SupervisorError) as excinfo:
                run_matrix_parallel(
                    APPS, CONFIGS, TEST_SCALE, max_workers=1,
                    cache=True, cache_dir=tmp_path / "cache",
                    trace_cache=False, retries=0, backoff=0.0)
        # The failure is precise: swap's groups, nobody else's.
        failed = {g.group for g in excinfo.value.report.failed()}
        assert failed == {"swap/%s" % m
                          for m in {c.fence_mode for c in CONFIGS}}
        # update's groups were built and persisted before the crash.
        assert workload_base.BUILD_COUNT - before == N_MODES

        # The rerun resumes: update comes from the cache (zero builds),
        # only swap's groups are simulated.
        between = workload_base.BUILD_COUNT
        results = run_matrix_parallel(
            APPS, CONFIGS, TEST_SCALE, max_workers=1,
            cache=True, cache_dir=tmp_path / "cache",
            trace_cache=False)
        assert workload_base.BUILD_COUNT - between == N_MODES
        assert last_matrix_report().resumed_from_cache == len(CONFIGS)
        assert_bit_identical(results, serial_matrix)

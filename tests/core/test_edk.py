"""Tests for EDK validation and allocation."""

import pytest

from repro.core.edk import (
    NUM_EDM_ENTRIES,
    NUM_KEYS,
    ZERO_KEY,
    EdkAllocator,
    real_keys,
    validate_edk,
)


class TestConstants:
    def test_sixteen_keys(self):
        assert NUM_KEYS == 16

    def test_zero_key_is_zero(self):
        assert ZERO_KEY == 0

    def test_edm_holds_fifteen(self):
        assert NUM_EDM_ENTRIES == 15

    def test_real_keys_excludes_zero(self):
        keys = list(real_keys())
        assert keys == list(range(1, 16))


class TestValidation:
    def test_valid_range(self):
        for key in range(16):
            assert validate_edk(key) == key

    def test_out_of_range(self):
        for bad in (-1, 16, 100):
            with pytest.raises(ValueError):
                validate_edk(bad)

    def test_non_int(self):
        with pytest.raises(ValueError):
            validate_edk("1")
        with pytest.raises(ValueError):
            validate_edk(True)


class TestAllocator:
    def test_round_robin(self):
        alloc = EdkAllocator()
        first_cycle = [alloc.allocate() for _ in range(15)]
        assert first_cycle == list(range(1, 16))
        assert alloc.allocate() == 1  # wraps

    def test_never_returns_zero(self):
        alloc = EdkAllocator()
        assert all(alloc.allocate() != ZERO_KEY for _ in range(100))

    def test_reset(self):
        alloc = EdkAllocator()
        alloc.allocate()
        alloc.allocate()
        alloc.reset()
        assert alloc.allocate() == 1

    def test_restricted_range(self):
        alloc = EdkAllocator(first=3, last=5)
        assert [alloc.allocate() for _ in range(4)] == [3, 4, 5, 3]
        assert alloc.capacity == 3

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            EdkAllocator(first=0, last=5)
        with pytest.raises(ValueError):
            EdkAllocator(first=5, last=16)
        with pytest.raises(ValueError):
            EdkAllocator(first=8, last=4)

"""Tests for the static EDE verifier."""

import pytest

from repro.core import verifier
from repro.isa import instructions as ops


class TestDanglingConsumer:
    def test_consumer_without_producer_warns(self):
        findings = verifier.verify([
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=0),
        ])
        assert any("no live producer" in f.message for f in findings)

    def test_consumer_with_producer_clean(self):
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=64),
        ])
        assert findings == []


class TestOverwrittenProducer:
    def test_unconsumed_producer_overwrite_warns(self):
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.dc_cvap_ede(1, edk_def=3, edk_use=0, addr=64),
        ])
        assert any("overwritten" in f.message for f in findings)

    def test_consumed_producer_overwrite_is_fine(self):
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=64),
            ops.dc_cvap_ede(1, edk_def=3, edk_use=0, addr=128),
        ])
        assert [f for f in findings if "overwritten" in f.message] == []

    def test_self_chaining_redefine_is_fine(self):
        """WAIT_KEY-style (k, k) redefinitions chain, not overwrite."""
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.wait_key(3),
        ])
        assert [f for f in findings if "overwritten" in f.message] == []


class TestJoin:
    def test_join_without_uses_warns(self):
        findings = verifier.verify([ops.join(1, 0, 0)])
        assert any("no use keys" in f.message for f in findings)

    def test_join_with_uses_needs_producers(self):
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=0),
            ops.dc_cvap_ede(1, edk_def=2, edk_use=0, addr=64),
            ops.join(3, 1, 2),
        ])
        assert findings == []


class TestFenceShadowing:
    def test_fence_between_producer_and_consumer_is_informational(self):
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.dsb_sy(),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=64),
        ])
        infos = [f for f in findings if f.severity == verifier.INFO]
        assert len(infos) == 1
        assert "already enforced" in infos[0].message

    def test_dmb_st_does_not_shadow(self):
        """DMB ST does not order DC CVAPs architecturally, so no shadow."""
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.dmb_st(),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=64),
        ])
        assert [f for f in findings if f.severity == verifier.INFO] == []


class TestAssertClean:
    def test_clean_sequence_passes(self):
        verifier.assert_clean([
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=0),
            ops.store_ede(1, 2, edk_def=0, edk_use=1, addr=64),
        ])

    def test_dirty_sequence_raises(self):
        with pytest.raises(ValueError):
            verifier.assert_clean([
                ops.store_ede(1, 2, edk_def=0, edk_use=9, addr=0),
            ])

    def test_info_findings_do_not_raise(self):
        verifier.assert_clean([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.dsb_sy(),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=64),
        ])


class TestGeneratedCodeIsClean:
    def test_framework_ede_output_verifies(self):
        """Everything the code generator emits must verify cleanly."""
        from repro.workloads import TEST_SCALE, build
        built = build("update", "ede", TEST_SCALE)
        findings = [f for f in verifier.verify(built.trace)
                    if f.severity != verifier.INFO]
        assert findings == []

    def test_wait_all_keys_counts_as_consumption(self):
        findings = verifier.verify([
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.wait_all_keys(),
            ops.dc_cvap_ede(1, edk_def=3, edk_use=0, addr=64),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=128),
        ])
        assert [f for f in findings if "overwritten" in f.message] == []

"""Tests for the Execution Dependence Map, including checkpoint recovery."""

import pytest
from hypothesis import given, strategies as st

from repro.core.edm import CheckpointedEdm, ExecutionDependenceMap


class TestBasicMap:
    def test_empty_lookup_misses(self):
        edm = ExecutionDependenceMap()
        assert edm.lookup(1) is None

    def test_define_then_lookup(self):
        edm = ExecutionDependenceMap()
        edm.define(3, 100)
        assert edm.lookup(3) == 100

    def test_zero_key_never_stored(self):
        edm = ExecutionDependenceMap()
        edm.define(0, 100)
        assert len(edm) == 0
        assert edm.lookup(0) is None

    def test_redefinition_overwrites(self):
        edm = ExecutionDependenceMap()
        edm.define(3, 100)
        edm.define(3, 200)
        assert edm.lookup(3) == 200

    def test_clear_on_complete_matching(self):
        edm = ExecutionDependenceMap()
        edm.define(3, 100)
        assert edm.clear_on_complete(3, 100)
        assert edm.lookup(3) is None

    def test_clear_on_complete_stale_id_keeps_entry(self):
        """A younger producer overwrote the key: completion of the older
        one must not clear the younger mapping (Section V-A)."""
        edm = ExecutionDependenceMap()
        edm.define(3, 100)
        edm.define(3, 200)
        assert not edm.clear_on_complete(3, 100)
        assert edm.lookup(3) == 200

    def test_clear_zero_key_is_noop(self):
        edm = ExecutionDependenceMap()
        assert not edm.clear_on_complete(0, 100)

    def test_clear_id_removes_all_keys(self):
        edm = ExecutionDependenceMap()
        edm.define(1, 100)
        edm.define(2, 100)
        edm.define(3, 200)
        assert sorted(edm.clear_id(100)) == [1, 2]
        assert edm.occupied_keys() == (3,)

    def test_capacity_is_fifteen(self):
        edm = ExecutionDependenceMap()
        for key in range(1, 16):
            edm.define(key, key * 10)
        assert len(edm) == 15

    def test_snapshot_restore(self):
        edm = ExecutionDependenceMap()
        edm.define(5, 50)
        snap = edm.snapshot()
        edm.define(5, 99)
        edm.define(7, 70)
        edm.restore(snap)
        assert edm.lookup(5) == 50
        assert edm.lookup(7) is None

    def test_restore_rejects_zero_key(self):
        edm = ExecutionDependenceMap()
        with pytest.raises(ValueError):
            edm.restore({0: 5})

    def test_contains(self):
        edm = ExecutionDependenceMap()
        edm.define(4, 1)
        assert 4 in edm
        assert 5 not in edm


class TestCheckpointedEdm:
    def test_decode_returns_producers(self):
        edm = CheckpointedEdm()
        edm.decode(1, (), inst_id=10)          # producer of EDK#1
        deps = edm.decode(0, (1,), inst_id=11)  # consumer of EDK#1
        assert deps == (10,)

    def test_decode_miss_returns_empty(self):
        edm = CheckpointedEdm()
        assert edm.decode(0, (5,), inst_id=1) == ()

    def test_decode_dedups_producers(self):
        edm = CheckpointedEdm()
        edm.decode(1, (), inst_id=10)
        edm.decode(2, (), inst_id=10)  # same producer on two keys
        assert edm.decode(0, (1, 2), inst_id=11) == (10,)

    def test_consumer_lookup_happens_before_produce(self):
        """WAIT_KEY-style instructions consume and produce the same key;
        the lookup must see the *previous* producer."""
        edm = CheckpointedEdm()
        edm.decode(4, (), inst_id=10)
        deps = edm.decode(4, (4,), inst_id=11)
        assert deps == (10,)
        assert edm.spec.lookup(4) == 11

    def test_complete_clears_both_copies(self):
        edm = CheckpointedEdm()
        edm.decode(1, (), inst_id=10)
        edm.retire(1, 10)
        edm.complete(1, 10)
        assert edm.spec.lookup(1) is None
        assert edm.non_spec.lookup(1) is None

    def test_squash_restores_retired_state(self):
        edm = CheckpointedEdm()
        edm.decode(1, (), inst_id=10)
        edm.retire(1, 10)
        # Speculative younger producer overwrites the key, then squashes.
        edm.decode(1, (), inst_id=20)
        assert edm.spec.lookup(1) == 20
        edm.squash()
        assert edm.spec.lookup(1) == 10

    def test_squash_drops_unretired_definitions(self):
        edm = CheckpointedEdm()
        edm.decode(2, (), inst_id=30)  # never retires
        edm.squash()
        assert edm.spec.lookup(2) is None

    def test_named_checkpoints(self):
        edm = CheckpointedEdm()
        edm.decode(1, (), inst_id=1)
        edm.take_checkpoint("branch-5")
        edm.decode(1, (), inst_id=2)
        edm.restore_checkpoint("branch-5")
        assert edm.spec.lookup(1) == 1

    def test_discard_checkpoint(self):
        edm = CheckpointedEdm()
        edm.take_checkpoint(1)
        edm.discard_checkpoint(1)
        edm.discard_checkpoint(99)  # idempotent

    def test_clear(self):
        edm = CheckpointedEdm()
        edm.decode(1, (), inst_id=1)
        edm.retire(1, 1)
        edm.clear()
        assert edm.spec.lookup(1) is None
        assert edm.non_spec.lookup(1) is None


class TestEdmModelBased:
    """The EDM must behave exactly like a 15-entry dict."""

    @given(st.lists(st.tuples(
        st.sampled_from(["define", "lookup", "clear"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=50)), max_size=200))
    def test_against_dict_model(self, operations):
        edm = ExecutionDependenceMap()
        model = {}
        for action, key, value in operations:
            if action == "define":
                edm.define(key, value)
                if key != 0:
                    model[key] = value
            elif action == "lookup":
                assert edm.lookup(key) == (model.get(key) if key else None)
            else:
                cleared = edm.clear_on_complete(key, value)
                should_clear = key != 0 and model.get(key) == value
                assert cleared == should_clear
                if should_clear:
                    del model[key]
        assert len(edm) == len(model)
        assert len(edm) <= 15

"""Tests for enforcement policies."""

import pytest

from repro.core.policies import (
    EnforcementPolicy,
    FENCE_POLICY,
    IQ_POLICY,
    WB_POLICY,
    policy_by_name,
)


class TestPolicies:
    def test_iq_enforces_at_issue_only(self):
        assert IQ_POLICY.enforce_at_issue
        assert not IQ_POLICY.enforce_at_write_buffer
        assert IQ_POLICY.enforces_ede

    def test_wb_enforces_at_write_buffer_only(self):
        assert WB_POLICY.enforce_at_write_buffer
        assert not WB_POLICY.enforce_at_issue
        assert WB_POLICY.enforces_ede

    def test_fence_policy_enforces_nothing(self):
        assert not FENCE_POLICY.enforces_ede

    def test_both_points_rejected(self):
        with pytest.raises(ValueError):
            EnforcementPolicy(name="bad", enforce_at_issue=True,
                              enforce_at_write_buffer=True)

    def test_lookup_by_name(self):
        assert policy_by_name("iq") is IQ_POLICY
        assert policy_by_name("WB") is WB_POLICY
        assert policy_by_name("fence") is FENCE_POLICY

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            policy_by_name("XYZ")

    def test_frozen(self):
        with pytest.raises(Exception):
            IQ_POLICY.name = "other"

"""Tests for the dependence graph (Figure 5 reproduction)."""

from repro.core import depgraph
from repro.core.depgraph import DependenceGraph
from repro.isa import instructions as ops


def figure4_instructions(nvm=0x80000000):
    """The Figure 4 sequence with resolved addresses."""
    elem = nvm + 0x1000
    slot = nvm + 0x2000
    return [
        ops.ldr(1, 0, addr=elem),                  # 0: load original value
        ops.stp(0, 1, 2, addr=slot),               # 1: store addr & val
        ops.dc_cvap(2, addr=slot),                 # 2: persist slot
        ops.dsb_sy(),                              # 3
        ops.mov_imm(3, 6),                         # 4
        ops.store(3, 0, addr=elem),                # 5: store new value
        ops.dc_cvap(0, addr=elem),                 # 6: persist new value
    ]


def figure7_instructions(nvm=0x80000000):
    """The EDE version: producer cvap + consumer str, no DSB."""
    elem = nvm + 0x1000
    slot = nvm + 0x2000
    return [
        ops.ldr(1, 0, addr=elem),
        ops.stp(0, 1, 2, addr=slot),
        ops.dc_cvap_ede(2, edk_def=1, edk_use=0, addr=slot),
        ops.mov_imm(3, 6),
        ops.store_ede(3, 0, edk_def=0, edk_use=1, addr=elem),
        ops.dc_cvap(0, addr=elem),
    ]


class TestRegisterEdges:
    def test_def_use_edge(self):
        graph = DependenceGraph(figure4_instructions())
        # mov x3 (4) -> str x3 (5)
        edges = graph.successors(4, kinds=[depgraph.REGISTER])
        assert any(e.dst == 5 for e in edges)

    def test_load_feeds_stp(self):
        graph = DependenceGraph(figure4_instructions())
        edges = graph.successors(0, kinds=[depgraph.REGISTER])
        assert any(e.dst == 1 for e in edges)

    def test_flags_edge(self):
        insts = [ops.cmp(1, 2), ops.branch_cond(ops.Opcode.B_NE, "x")]
        graph = DependenceGraph(insts)
        edges = graph.successors(0, kinds=[depgraph.REGISTER])
        assert any(e.dst == 1 and e.detail == "flags" for e in edges)

    def test_last_writer_wins(self):
        insts = [ops.mov_imm(1, 1), ops.mov_imm(1, 2),
                 ops.add(2, 1, imm=0)]
        graph = DependenceGraph(insts)
        assert not graph.successors(0, kinds=[depgraph.REGISTER])
        assert graph.successors(1, kinds=[depgraph.REGISTER])


class TestMemoryEdges:
    def test_store_then_cvap_same_line(self):
        graph = DependenceGraph(figure4_instructions())
        edges = graph.successors(1, kinds=[depgraph.MEMORY])
        assert any(e.dst == 2 for e in edges)

    def test_str_then_cvap(self):
        graph = DependenceGraph(figure4_instructions())
        edges = graph.successors(5, kinds=[depgraph.MEMORY])
        assert any(e.dst == 6 for e in edges)

    def test_loads_do_not_chain_with_loads(self):
        insts = [ops.ldr(1, 0, addr=64), ops.ldr(2, 0, addr=64)]
        graph = DependenceGraph(insts)
        assert not graph.successors(0, kinds=[depgraph.MEMORY])

    def test_load_after_store_chains(self):
        insts = [ops.store(1, 0, addr=64), ops.ldr(2, 0, addr=64)]
        graph = DependenceGraph(insts)
        assert graph.successors(0, kinds=[depgraph.MEMORY])


class TestExecutionEdges:
    def test_figure7_execution_edge(self):
        """The red arrow of Figure 5: cvap(slot) -> str(new value)."""
        graph = DependenceGraph(figure7_instructions())
        execution = graph.execution_edges()
        assert len(execution) == 1
        edge = execution[0]
        assert edge.src == 2 and edge.dst == 4
        assert edge.detail == "EDK#1"

    def test_figure4_has_no_execution_edges(self):
        graph = DependenceGraph(figure4_instructions())
        assert graph.execution_edges() == []

    def test_key_reuse_creates_new_edges(self):
        insts = [
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=0),
            ops.store_ede(1, 2, edk_def=0, edk_use=1, addr=64),
            ops.dc_cvap_ede(3, edk_def=1, edk_use=0, addr=128),
            ops.store_ede(4, 5, edk_def=0, edk_use=1, addr=192),
        ]
        graph = DependenceGraph(insts)
        edges = {(e.src, e.dst) for e in graph.execution_edges()}
        assert edges == {(0, 1), (2, 3)}

    def test_one_to_many(self):
        insts = [
            ops.dc_cvap_ede(0, edk_def=3, edk_use=0, addr=0),
            ops.store_ede(1, 2, edk_def=0, edk_use=3, addr=64),
            ops.store_ede(4, 5, edk_def=0, edk_use=3, addr=128),
        ]
        graph = DependenceGraph(insts)
        edges = {(e.src, e.dst) for e in graph.execution_edges()}
        assert edges == {(0, 1), (0, 2)}

    def test_join_many_to_one(self):
        insts = [
            ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=0),
            ops.dc_cvap_ede(1, edk_def=2, edk_use=0, addr=128),
            ops.join(3, 1, 2),
            ops.store_ede(4, 5, edk_def=0, edk_use=3, addr=256),
        ]
        graph = DependenceGraph(insts)
        edges = {(e.src, e.dst) for e in graph.execution_edges()}
        assert edges == {(0, 2), (1, 2), (2, 3)}


class TestQueries:
    def test_has_path_through_mixed_kinds(self):
        graph = DependenceGraph(figure7_instructions())
        # ldr -> stp (reg) -> cvap (mem) -> str (execution) -> cvap (mem)
        assert graph.has_path(0, 5)

    def test_no_path_between_independent(self):
        insts = [ops.mov_imm(1, 1), ops.mov_imm(2, 2)]
        graph = DependenceGraph(insts)
        assert not graph.has_path(0, 1)

    def test_predecessors(self):
        graph = DependenceGraph(figure7_instructions())
        preds = graph.predecessors(4, kinds=[depgraph.EXECUTION])
        assert [e.src for e in preds] == [2]

    def test_dot_output(self):
        graph = DependenceGraph(figure7_instructions())
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert 'color="red"' in dot  # execution edges are red, as in Fig. 5

"""Tests for the EDK calling convention (Section IX-B, Figure 13)."""

from repro.core.calling_convention import (
    CALLEE_SAVED_KEYS,
    CALLER_SAVED_KEYS,
    check_callee,
    check_caller,
    insert_caller_waits,
    keys_of,
)
from repro.isa import instructions as ops
from repro.isa.opcodes import Opcode


def bl():
    return ops.Instruction(Opcode.BL, target="foo")


CALLER_KEY = CALLER_SAVED_KEYS[0]
CALLEE_KEY = CALLEE_SAVED_KEYS[0]


class TestKeySplit:
    def test_split_is_disjoint_and_complete(self):
        assert not set(CALLER_SAVED_KEYS) & set(CALLEE_SAVED_KEYS)
        assert sorted(CALLER_SAVED_KEYS + CALLEE_SAVED_KEYS) == list(range(1, 16))

    def test_keys_of(self):
        inst = ops.join(3, 1, 2)
        assert keys_of(inst) == (3, 1, 2)
        assert keys_of(ops.wait_key(4)) == (4,)
        assert keys_of(ops.nop()) == ()


class TestFigure13:
    def _caller(self):
        """The caller of Figure 13: produce X (caller-saved) and Y
        (callee-saved), call foo, then consume both."""
        return [
            ops.dc_cvap_ede(0, edk_def=CALLER_KEY, edk_use=0, addr=0),
            ops.dc_cvap_ede(1, edk_def=CALLEE_KEY, edk_use=0, addr=64),
            bl(),
            ops.store_ede(2, 3, edk_def=0, edk_use=CALLER_KEY, addr=128),
            ops.store_ede(4, 5, edk_def=0, edk_use=CALLEE_KEY, addr=192),
        ]

    def test_caller_without_wait_violates(self):
        violations = check_caller(self._caller())
        assert len(violations) == 1
        assert violations[0].key == CALLER_KEY

    def test_insert_caller_waits_fixes(self):
        fixed = insert_caller_waits(self._caller())
        assert any(i.opcode is Opcode.WAIT_KEY and i.edk_use == CALLER_KEY
                   for i in fixed)
        assert check_caller(fixed) == []

    def test_wait_inserted_right_after_call(self):
        fixed = insert_caller_waits(self._caller())
        call_index = next(i for i, inst in enumerate(fixed)
                          if inst.opcode is Opcode.BL)
        assert fixed[call_index + 1].opcode is Opcode.WAIT_KEY

    def test_callee_saved_key_needs_no_caller_wait(self):
        fixed = insert_caller_waits(self._caller())
        waits = [i for i in fixed if i.opcode is Opcode.WAIT_KEY]
        assert all(w.edk_use != CALLEE_KEY for w in waits)

    def test_callee_self_consuming_producer_is_legal(self):
        """Figure 13, line 10: inst (Y, Y) chains behind the caller's Y."""
        body = [ops.dc_cvap_ede(0, edk_def=CALLEE_KEY, edk_use=CALLEE_KEY,
                                addr=0)]
        assert check_callee(body) == []

    def test_callee_plain_producer_violates(self):
        body = [ops.dc_cvap_ede(0, edk_def=CALLEE_KEY, edk_use=0, addr=0)]
        violations = check_callee(body)
        assert len(violations) == 1
        assert violations[0].key == CALLEE_KEY

    def test_callee_wait_key_then_produce_is_legal(self):
        body = [
            ops.wait_key(CALLEE_KEY),
            ops.dc_cvap_ede(0, edk_def=CALLEE_KEY, edk_use=0, addr=0),
        ]
        assert check_callee(body) == []

    def test_callee_caller_saved_keys_unrestricted(self):
        body = [ops.dc_cvap_ede(0, edk_def=CALLER_KEY, edk_use=0, addr=0)]
        assert check_callee(body) == []


class TestEdgeCases:
    def test_no_call_no_waits_inserted(self):
        insts = [
            ops.dc_cvap_ede(0, edk_def=CALLER_KEY, edk_use=0, addr=0),
            ops.store_ede(1, 2, edk_def=0, edk_use=CALLER_KEY, addr=64),
        ]
        assert insert_caller_waits(insts) == insts
        assert check_caller(insts) == []

    def test_reproduced_key_after_call_is_fine(self):
        insts = [
            ops.dc_cvap_ede(0, edk_def=CALLER_KEY, edk_use=0, addr=0),
            bl(),
            ops.dc_cvap_ede(1, edk_def=CALLER_KEY, edk_use=0, addr=64),
            ops.store_ede(2, 3, edk_def=0, edk_use=CALLER_KEY, addr=128),
        ]
        assert check_caller(insts) == []

    def test_explicit_wait_after_call_is_fine(self):
        insts = [
            ops.dc_cvap_ede(0, edk_def=CALLER_KEY, edk_use=0, addr=0),
            bl(),
            ops.wait_key(CALLER_KEY),
            ops.store_ede(2, 3, edk_def=0, edk_use=CALLER_KEY, addr=128),
        ]
        assert check_caller(insts) == []

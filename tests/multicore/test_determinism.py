"""The subsystem's determinism contract.

Three claims, each asserted as *bit identity* via the service's
:func:`~repro.service.jobs.result_digest` (which covers cycles, the full
pipeline statistics, the NVM counters and buffer samples, the complete
persist log and the consistency verdict):

1. a (seed, core count) pair yields identical results on repeated runs;
2. an N=1 build pushed through the multi-core lockstep driver equals the
   classic single-core pipeline on every existing workload;
3. the serial and parallel matrix engines agree at ``cores=2``.
"""

import pytest

from repro.harness.configs import configuration
from repro.harness.runner import run_one
from repro.service.jobs import result_digest
from repro.workloads.base import Scale, workload_names

SAFE = ("B", "IQ", "WB")
MULTI = ("hazard", "mpsc", "counter")
SCALE2 = Scale(ops_per_txn=5, txns=3, seed=2021, cores=2)


class TestRepeatRuns:
    @pytest.mark.parametrize("workload", MULTI)
    @pytest.mark.parametrize("config", SAFE)
    def test_same_seed_same_digest(self, workload, config):
        first = result_digest(run_one(workload, configuration(config),
                                      SCALE2))
        second = result_digest(run_one(workload, configuration(config),
                                       SCALE2))
        assert first == second

    def test_seed_changes_digest(self):
        # Hazard's element/mutation draws come from the scale seed, so a
        # different seed builds observably different traces.  (counter and
        # mpsc only vary *written values* with the seed under the default
        # round-robin interleaver, and values are not timing-visible.)
        base = result_digest(run_one("hazard", configuration("IQ"), SCALE2))
        other = result_digest(run_one(
            "hazard", configuration("IQ"),
            Scale(ops_per_txn=5, txns=3, seed=7, cores=2)))
        assert base != other

    def test_interleaving_changes_digest(self, monkeypatch):
        # The consumer's per-transaction `take` count depends on how many
        # produces the interleaver ran before each consume — a genuinely
        # interleaving-dependent trace.  Weighted seed 3 front-loads the
        # consumer ([0,0,0,1,1,1]) vs round-robin's strict turns.
        base = result_digest(run_one("mpsc", configuration("IQ"), SCALE2))
        monkeypatch.setenv("REPRO_INTERLEAVE", "weighted")
        monkeypatch.setenv("REPRO_INTERLEAVE_SEED", "3")
        other = result_digest(run_one("mpsc", configuration("IQ"), SCALE2))
        assert base != other

    def test_core_count_changes_digest(self):
        two = result_digest(run_one("counter", configuration("IQ"), SCALE2))
        three = result_digest(run_one(
            "counter", configuration("IQ"),
            Scale(ops_per_txn=5, txns=3, seed=2021, cores=3)))
        assert two != three


class TestSingleCoreReduction:
    """N=1 through the lockstep driver is bit-identical to the classic
    pipeline — for every registered workload, under every configuration."""

    @pytest.mark.parametrize("workload", workload_names())
    def test_forced_multicore_equals_classic(self, workload):
        scale = Scale(ops_per_txn=5, txns=3, seed=2021)
        for name in ("B", "SU", "IQ", "WB", "U"):
            config = configuration(name)
            classic = run_one(workload, config, scale)
            lockstep = run_one(workload, config, scale, force_multicore=True)
            assert result_digest(classic) == result_digest(lockstep), name
            assert lockstep.core_stats is None

    def test_multicore_result_carries_core_stats(self):
        result = run_one("mpsc", configuration("WB"), SCALE2)
        assert result.core_stats is not None
        assert len(result.core_stats) == 2
        assert sum(s.retired for s in result.core_stats) == \
            result.stats.retired


class TestSerialParallelEquality:
    def test_matrix_engines_agree_at_two_cores(self, tmp_path):
        from repro.harness.parallel import run_matrix_parallel
        from repro.harness.runner import run_matrix

        configs = [configuration(n) for n in SAFE]
        serial = run_matrix(list(MULTI), configs, SCALE2,
                            parallel=False, cache=False)
        parallel = run_matrix_parallel(
            list(MULTI), configs, SCALE2, max_workers=2,
            cache=True, cache_dir=tmp_path)
        for workload in MULTI:
            for name in SAFE:
                assert result_digest(serial[workload][name]) == \
                    result_digest(parallel[workload][name]), (workload, name)

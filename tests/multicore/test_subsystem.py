"""Unit coverage of the multi-core building blocks: shared-EDM bus,
coherence directory, per-core layout carve-outs, EDK partitioning."""

import pytest

from repro.multicore.build import PartitionedEdkAllocator
from repro.multicore.coherence import (
    DEMOTE_PENALTY,
    INVALIDATE_PENALTY,
    CoherenceDirectory,
    CoherentHierarchy,
)
from repro.multicore.edm_bus import SharedEdmBus, remote_token
from repro.multicore.layout import (
    MAX_CORES,
    core_layout,
    txn_offset,
)


class _Dyn:
    """Minimal DynInst stand-in for bus bookkeeping tests."""

    def __init__(self, seq):
        self.seq = seq
        self.e_deps_outstanding = set()


class TestSharedEdmBus:
    def test_remote_producer_visible_across_cores(self):
        bus = SharedEdmBus()
        producer = _Dyn(seq=5)
        bus.publish(1, producer, (7,))
        assert bus.remote_producer(0, 7) == (1, 5)
        # The producing core itself resolves the key through its local EDM.
        assert bus.remote_producer(1, 7) is None

    def test_complete_clears_waiter_tokens(self):
        bus = SharedEdmBus()
        producer = _Dyn(seq=5)
        bus.publish(1, producer, (7,))
        consumer = _Dyn(seq=9)
        token = remote_token(1, 5)
        consumer.e_deps_outstanding.add(token)
        bus.add_waiter((1, 5), consumer)
        bus.complete(1, producer)
        assert token not in consumer.e_deps_outstanding
        assert bus.remote_producer(0, 7) is None

    def test_wait_watermark_ignores_later_publishes(self):
        bus = SharedEdmBus()
        bus.publish(1, _Dyn(seq=1), (3,))
        watermark = bus.ticket
        bus.publish(1, _Dyn(seq=2), (3,))
        assert bus.remote_inflight(0, 3, watermark)
        assert not bus.remote_inflight(0, 4, watermark)
        # The second publish is past the watermark: a wait dispatched at
        # the watermark must not block on it (deadlock freedom).
        bus.complete(1, _Dyn(seq=1))
        assert not bus.remote_inflight(0, 3, watermark)

    def test_wait_all_uses_key_zero_wildcard(self):
        bus = SharedEdmBus()
        bus.publish(2, _Dyn(seq=1), (11,))
        assert bus.remote_inflight(0, 0, bus.ticket)
        assert not bus.remote_inflight(2, 0, bus.ticket)


class TestCoherence:
    def _pair(self):
        from repro.harness.configs import DEFAULT_PARAMS
        from repro.memory.controller import MemoryController

        params = DEFAULT_PARAMS
        controller = MemoryController(address_map=params.address_map,
                                      dram_params=params.dram,
                                      nvm_params=params.nvm)
        directory = CoherenceDirectory()
        pair = [CoherentHierarchy(controller, params.hierarchy, directory,
                                  core_id) for core_id in range(2)]
        return directory, pair

    def test_store_invalidates_remote_copy(self):
        directory, (a, b) = self._pair()
        addr = 64 << 20
        b.load(addr, cycle=0)
        assert b.l1d.lookup(b.l1d.line_addr(addr))
        directory.on_store(0, addr, cycle=10)
        assert not b.l1d.lookup(b.l1d.line_addr(addr))
        assert directory.invalidations == 1

    def test_load_demotes_remote_dirty_copy(self):
        directory, (a, b) = self._pair()
        addr = 64 << 20
        b.store_commit(addr, cycle=0)
        penalty = directory.on_load(0, addr, cycle=10)
        assert penalty == DEMOTE_PENALTY
        assert directory.demotions == 1
        assert directory.dirty_writebacks == 1

    def test_clean_remote_copies_are_free_sharers(self):
        directory, (a, b) = self._pair()
        addr = 64 << 20
        b.load(addr, cycle=0)
        assert directory.on_load(0, addr, cycle=10) == 0

    def test_disabled_directory_is_inert(self):
        from repro.harness.configs import DEFAULT_PARAMS
        from repro.memory.controller import MemoryController

        params = DEFAULT_PARAMS
        controller = MemoryController(address_map=params.address_map,
                                      dram_params=params.dram,
                                      nvm_params=params.nvm)
        directory = CoherenceDirectory(enabled=False)
        pair = [CoherentHierarchy(controller, params.hierarchy, directory,
                                  core_id) for core_id in range(2)]
        addr = 64 << 20
        pair[1].store_commit(addr, cycle=0)
        assert directory.on_load(0, addr, cycle=10) == 0
        assert directory.on_store(0, addr, cycle=10) == 0

    def test_store_penalty_constant(self):
        directory, (a, b) = self._pair()
        addr = 64 << 20
        b.load(addr, cycle=0)
        assert directory.on_store(0, addr, cycle=10) == INVALIDATE_PENALTY


class TestLayout:
    def test_carve_outs_are_disjoint(self):
        layouts = [core_layout(core) for core in range(MAX_CORES)]
        regions = []
        for layout in layouts:
            regions.append((layout.tx_meta_base,
                            layout.tx_meta_base + layout.tx_meta_bytes))
            regions.append((layout.log_base,
                            layout.log_base + layout.log_bytes))
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_heap_shared_and_past_every_log(self):
        layouts = [core_layout(core) for core in range(MAX_CORES)]
        heaps = {layout.heap_base for layout in layouts}
        assert len(heaps) == 1
        heap = heaps.pop()
        assert all(layout.log_base + layout.log_bytes <= heap
                   for layout in layouts)

    def test_log_heads_are_line_exclusive(self):
        heads = [core_layout(core).log_head_addr
                 for core in range(MAX_CORES)]
        assert len({head // 64 for head in heads}) == MAX_CORES

    def test_txn_offsets_preserve_epoch_bits(self):
        for core in range(MAX_CORES):
            assert txn_offset(core) % 8 == 0

    def test_out_of_range_core_rejected(self):
        with pytest.raises(ValueError):
            core_layout(MAX_CORES)


class TestEdkPartitioning:
    def test_partitions_are_disjoint_and_cover_free_keys(self):
        cores = 3
        reserved = (15, 14)
        partitions = [
            PartitionedEdkAllocator(core, cores, reserved)._keys
            for core in range(cores)
        ]
        seen = set()
        for keys in partitions:
            assert not (set(keys) & seen)
            seen.update(keys)
        assert seen == set(range(1, 16)) - set(reserved)

    def test_allocator_round_robins_its_partition(self):
        alloc = PartitionedEdkAllocator(0, 2)
        first = [alloc.allocate() for _ in range(alloc.capacity)]
        assert sorted(first) == sorted(set(first))
        assert alloc.allocate() == first[0]

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            PartitionedEdkAllocator(0, 1, reserved=tuple(range(1, 16)))

"""Service and cache integration: core counts flow with zero special-casing."""

import pytest

from repro.harness.configs import DEFAULT_PARAMS, configuration
from repro.harness.result_cache import ResultCache
from repro.harness.trace_cache import TraceCache
from repro.multicore.knobs import multicore_env_signature
from repro.service.jobs import JobSpec, job_id_for, result_cache_key
from repro.workloads.base import Scale


class TestJobSpecCores:
    def test_round_trips_through_json_dict(self):
        spec = JobSpec(kind="simulate", workload="mpsc", config="WB",
                       cores=2)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.scale.cores == 2

    def test_default_is_single_core(self):
        spec = JobSpec(kind="simulate", workload="update", config="B")
        assert spec.cores == 1
        assert spec.scale.cores == 1

    def test_validate_rejects_single_core_workload_at_two_cores(self):
        spec = JobSpec(kind="simulate", workload="update", config="B",
                       cores=2)
        with pytest.raises(ValueError, match="single-core only"):
            spec.validate()

    def test_validate_rejects_cores_on_analyze_jobs(self):
        spec = JobSpec(kind="analyze", workload="hazard", config="ede",
                       cores=2)
        with pytest.raises(ValueError, match="simulate jobs only"):
            spec.validate()

    def test_from_dict_rejects_non_integer_cores(self):
        spec = JobSpec(kind="simulate", workload="hazard", config="IQ")
        data = spec.to_dict()
        data["cores"] = "2"
        with pytest.raises(ValueError, match="cores must be an integer"):
            JobSpec.from_dict(data)

    def test_core_count_changes_job_id(self):
        one = JobSpec(kind="simulate", workload="hazard", config="IQ")
        two = JobSpec(kind="simulate", workload="hazard", config="IQ",
                      cores=2)
        assert job_id_for(one) != job_id_for(two)


class TestCacheKeys:
    def test_service_key_matches_result_cache_key(self):
        spec = JobSpec(kind="simulate", workload="counter", config="WB",
                       cores=2)
        store = ResultCache()
        assert result_cache_key(spec) == store.key(
            spec.workload, spec.configuration, spec.scale, DEFAULT_PARAMS)

    def test_core_count_changes_cache_keys(self):
        one = Scale(ops_per_txn=5, txns=3, cores=1)
        two = Scale(ops_per_txn=5, txns=3, cores=2)
        config = configuration("IQ")
        assert ResultCache().key("mpsc", config, one, DEFAULT_PARAMS) != \
            ResultCache().key("mpsc", config, two, DEFAULT_PARAMS)
        assert TraceCache().key("mpsc", "ede", one, DEFAULT_PARAMS) != \
            TraceCache().key("mpsc", "ede", two, DEFAULT_PARAMS)

    def test_interleave_knobs_change_cache_keys(self, monkeypatch):
        scale = Scale(ops_per_txn=5, txns=3, cores=2)
        config = configuration("IQ")
        base = ResultCache().key("mpsc", config, scale, DEFAULT_PARAMS)
        monkeypatch.setenv("REPRO_INTERLEAVE", "weighted")
        assert ResultCache().key("mpsc", config, scale, DEFAULT_PARAMS) != base

    def test_env_signature_reflects_every_knob(self, monkeypatch):
        default = multicore_env_signature()
        monkeypatch.setenv("REPRO_INTERLEAVE_SEED", "17")
        seeded = multicore_env_signature()
        monkeypatch.setenv("REPRO_COHERENCE", "0")
        uncoherent = multicore_env_signature()
        assert len({default, seeded, uncoherent}) == 3


class TestCachedMulticoreResults:
    def test_result_cache_round_trip(self, tmp_path):
        from repro.harness.runner import run_one

        scale = Scale(ops_per_txn=5, txns=3, cores=2)
        config = configuration("WB")
        store = ResultCache(tmp_path)
        result = run_one("counter", config, scale)
        key = store.key("counter", config, scale, DEFAULT_PARAMS)
        store.store(key, result)
        loaded = store.load(key)
        from repro.service.jobs import result_digest

        assert loaded is not None
        assert result_digest(loaded) == result_digest(result)
        assert len(loaded.core_stats) == 2

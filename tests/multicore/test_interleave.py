"""Deterministic interleaver: schedule shape and reproducibility."""

import pytest

from repro.multicore.interleave import run_interleaved, schedule_order


class TestScheduleOrder:
    def test_round_robin_strict_turns(self):
        order = schedule_order([3, 3], "round_robin", seed=1)
        assert order == [0, 1, 0, 1, 0, 1]

    def test_round_robin_skips_exhausted_streams(self):
        order = schedule_order([1, 3], "round_robin", seed=1)
        assert order == [0, 1, 1, 1]

    def test_weighted_is_seed_deterministic(self):
        a = schedule_order([5, 5, 5], "weighted", seed=42)
        b = schedule_order([5, 5, 5], "weighted", seed=42)
        assert a == b

    def test_weighted_seed_changes_schedule(self):
        a = schedule_order([20, 20], "weighted", seed=1)
        b = schedule_order([20, 20], "weighted", seed=2)
        assert a != b

    def test_every_unit_scheduled_exactly_once(self):
        for policy in ("round_robin", "weighted"):
            order = schedule_order([4, 7, 2], policy, seed=9)
            assert sorted(order) == [0] * 4 + [1] * 7 + [2] * 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            schedule_order([1, 1], "lottery", seed=1)


class TestRunInterleaved:
    def test_executes_in_schedule_order(self):
        log = []
        streams = [
            [lambda i=i: log.append((0, i)) for i in range(3)],
            [lambda i=i: log.append((1, i)) for i in range(3)],
        ]
        order = run_interleaved(streams, "round_robin", seed=0)
        assert order == [0, 1, 0, 1, 0, 1]
        assert log == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]

    def test_single_stream_runs_in_program_order(self):
        log = []
        run_interleaved([[lambda i=i: log.append(i) for i in range(5)]],
                        "weighted", seed=3)
        assert log == list(range(5))

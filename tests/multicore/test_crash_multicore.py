"""Crash-consistency sweeps of the concurrent persistent workloads.

The MPSC queue and the locked counter follow the multi-core recovery
contract (single-writer line-exclusive persistent cells, per-core commit
records / undo logs / txn-id epochs), so every persist-log prefix must
recover to a per-core transaction boundary.  The hazard kernel is
volatile: its safety claim is the ordering checker's verdict.
"""

import pytest

from repro.consistency.crash_sim import CrashInjector, validate_multicore
from repro.harness.configs import configuration
from repro.harness.runner import run_one
from repro.workloads.base import Scale, ensure_core_count

SAFE = ("B", "IQ", "WB")
SCALE2 = Scale(ops_per_txn=5, txns=3, seed=2021, cores=2)


class TestMulticoreRecovery:
    @pytest.mark.parametrize("workload", ("mpsc", "counter"))
    @pytest.mark.parametrize("config", SAFE)
    def test_every_crash_point_consistent(self, workload, config):
        result = run_one(workload, configuration(config), SCALE2)
        reports = validate_multicore(result.built, result.persist_log)
        assert len(reports) == len(result.persist_log) + 1
        bad = [r for r in reports if not r.consistent]
        assert not bad, bad[0].mismatches[:5] if bad else None

    def test_full_log_recovers_every_transaction(self):
        result = run_one("counter", configuration("B"), SCALE2)
        reports = validate_multicore(result.built, result.persist_log,
                                     crash_points=[len(result.persist_log)])
        assert reports[0].committed_txns == result.built.txns

    def test_single_core_validator_refuses_multicore_builds(self):
        result = run_one("counter", configuration("B"), SCALE2)
        injector = CrashInjector(result.built, result.persist_log)
        with pytest.raises(ValueError, match="validate_multicore"):
            injector.validate(0)

    def test_volatile_workload_has_no_recovery_states(self):
        result = run_one("hazard", configuration("B"), SCALE2)
        with pytest.raises(ValueError, match="per-core committed states"):
            validate_multicore(result.built, result.persist_log)


class TestHazardSafety:
    @pytest.mark.parametrize("config", SAFE)
    def test_checker_verdict_safe(self, config):
        result = run_one("hazard", configuration(config), SCALE2)
        assert result.consistency.verdict == "safe"
        assert not result.consistency.violations


class TestFailLoudGates:
    def test_single_core_workload_rejects_cores(self):
        with pytest.raises(ValueError, match="single-core only"):
            ensure_core_count("update", 2)

    def test_core_count_above_model_cap_rejected(self):
        with pytest.raises(ValueError, match="modeled maximum"):
            ensure_core_count("hazard", 9)

    def test_build_rejects_unmodeled_core_count(self):
        from repro.workloads.base import build

        with pytest.raises(ValueError, match="single-core only"):
            build("update", "ede", Scale(ops_per_txn=2, txns=2, cores=2))

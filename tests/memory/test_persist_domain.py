"""Tests for the persist-domain event log."""

from repro.memory.persist_domain import KIND_CVAP, KIND_EVICTION, PersistLog


class TestRecording:
    def test_sequence_numbers_monotonic(self):
        log = PersistLog()
        for index in range(5):
            record = log.record(cycle=index * 10, line_addr=index * 64,
                                kind=KIND_CVAP)
            assert record.seq == index

    def test_iteration_order(self):
        log = PersistLog()
        log.record(1, 0x40, KIND_CVAP, tag="a")
        log.record(2, 0x80, KIND_EVICTION)
        assert [r.tag for r in log] == ["a", None]

    def test_len_and_index(self):
        log = PersistLog()
        log.record(1, 0x40, KIND_CVAP)
        assert len(log) == 1
        assert log[0].line_addr == 0x40


class TestTagQueries:
    def test_first_with_tag(self):
        log = PersistLog()
        log.record(1, 0x40, KIND_CVAP, tag="log:0")
        log.record(2, 0x40, KIND_CVAP, tag="log:0")
        first = log.first_with_tag("log:0")
        assert first.seq == 0

    def test_missing_tag(self):
        assert PersistLog().first_with_tag("nope") is None

    def test_all_with_tag(self):
        log = PersistLog()
        log.record(1, 0x40, KIND_CVAP, tag="t")
        log.record(2, 0x80, KIND_CVAP, tag="u")
        log.record(3, 0xC0, KIND_CVAP, tag="t")
        assert [r.seq for r in log.all_with_tag("t")] == [0, 2]


class TestLineQueries:
    def test_first_persist_of_line(self):
        log = PersistLog()
        log.record(1, 0x40, KIND_CVAP)
        log.record(2, 0x80, KIND_CVAP)
        log.record(3, 0x40, KIND_EVICTION)
        assert log.first_persist_of_line(0x40).seq == 0
        assert log.first_persist_of_line(0x40, after_seq=0).seq == 2
        assert log.first_persist_of_line(0x100) is None

    def test_prefix(self):
        log = PersistLog()
        for index in range(10):
            log.record(index, index * 64, KIND_CVAP)
        assert len(log.prefix(3)) == 3
        assert len(log.prefix(100)) == 10
        assert log.prefix(0) == []

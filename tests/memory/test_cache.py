"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.cache import Cache


def small_cache(assoc=2, sets=4, line=64):
    return Cache("T", assoc * sets * line, assoc, line)


class TestBasics:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000)
        cache.insert(0x1000)
        assert cache.lookup(0x1000)

    def test_same_line_addresses_hit(self):
        cache = small_cache()
        cache.insert(0x1000)
        assert cache.lookup(0x1008)
        assert cache.lookup(0x103F)

    def test_adjacent_line_misses(self):
        cache = small_cache()
        cache.insert(0x1000)
        assert not cache.lookup(0x1040)

    def test_stats(self):
        cache = small_cache()
        cache.lookup(0x1000)
        cache.insert(0x1000)
        cache.lookup(0x1000)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3, 64)
        with pytest.raises(ValueError):
            Cache("bad", 4096, 2, 48)

    def test_contains_does_not_disturb(self):
        cache = small_cache()
        cache.insert(0x1000)
        hits = cache.stats.hits
        assert cache.contains(0x1000)
        assert cache.stats.hits == hits


class TestLru:
    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(0x0)
        cache.insert(0x40)
        victim = cache.insert(0x80)
        assert victim is not None
        assert victim.addr == 0x0  # oldest way evicted

    def test_lookup_refreshes_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(0x0)
        cache.insert(0x40)
        cache.lookup(0x0)          # refresh
        victim = cache.insert(0x80)
        assert victim.addr == 0x40

    def test_reinsert_refreshes_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(0x0)
        cache.insert(0x40)
        cache.insert(0x0)
        victim = cache.insert(0x80)
        assert victim.addr == 0x40


class TestDirty:
    def test_dirty_eviction_flagged(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(0x0, dirty=True)
        victim = cache.insert(0x40)
        assert victim.dirty
        assert cache.stats.dirty_evictions == 1

    def test_clean_eviction(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(0x0)
        victim = cache.insert(0x40)
        assert not victim.dirty

    def test_mark_dirty(self):
        cache = small_cache()
        cache.insert(0x0)
        assert cache.mark_dirty(0x0)
        assert not cache.mark_dirty(0x999000)

    def test_clean_clears_dirty(self):
        cache = small_cache()
        cache.insert(0x0, dirty=True)
        assert cache.clean(0x0)
        assert not cache.clean(0x0)  # already clean

    def test_reinsert_dirty_keeps_dirty(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(0x0, dirty=True)
        cache.insert(0x0, dirty=False)
        cache.insert(0x40)  # fills the second way
        victim = cache.insert(0x80)
        assert victim.addr == 0x0 and victim.dirty

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(0x0, dirty=True)
        assert cache.invalidate(0x0) is True
        assert cache.invalidate(0x0) is None


class TestOccupancy:
    def test_occupancy_counts_lines(self):
        cache = small_cache(assoc=2, sets=4)
        for i in range(3):
            cache.insert(i * 0x40)
        assert cache.occupancy() == 3

    def test_occupancy_bounded_by_capacity(self):
        cache = small_cache(assoc=2, sets=2)
        for i in range(100):
            cache.insert(i * 0x40)
        assert cache.occupancy() <= 4


class TestAgainstReferenceModel:
    @given(st.lists(st.tuples(st.sampled_from(["access", "dirty-access"]),
                              st.integers(0, 15)), max_size=300))
    def test_matches_lru_reference(self, operations):
        """Per-set contents always match a reference LRU list."""
        assoc, sets, line = 2, 2, 64
        cache = Cache("T", assoc * sets * line, assoc, line)
        model = {s: [] for s in range(sets)}  # set -> [line numbers], MRU last
        for action, line_number in operations:
            addr = line_number * line
            set_index = line_number % sets
            dirty = action == "dirty-access"
            hit = cache.lookup(addr)
            assert hit == (line_number in model[set_index])
            cache.insert(addr, dirty=dirty)
            if line_number in model[set_index]:
                model[set_index].remove(line_number)
            model[set_index].append(line_number)
            if len(model[set_index]) > assoc:
                model[set_index].pop(0)
        for set_index in range(sets):
            for line_number in model[set_index]:
                assert cache.contains(line_number * line)

"""Tests for the DRAM model."""

from repro.memory.dram import DramModel, DramParams


class TestLatency:
    def test_first_access_is_row_miss(self):
        dram = DramModel()
        done = dram.access(0x0, 0, is_write=False)
        assert done == DramParams().row_miss_cycles
        assert dram.stats.row_misses == 1

    def test_second_access_same_row_hits(self):
        dram = DramModel()
        dram.access(0x0, 0, is_write=False)
        done = dram.access(0x0, 1000, is_write=False)
        assert done == 1000 + DramParams().row_hit_cycles
        assert dram.stats.row_hits == 1

    def test_row_conflict_misses_again(self):
        params = DramParams()
        dram = DramModel(params)
        stride = params.row_size * params.num_banks  # same bank, new row
        dram.access(0x0, 0, is_write=False)
        dram.access(stride, 10_000, is_write=False)
        assert dram.stats.row_misses == 2


class TestBankBehaviour:
    def test_same_bank_serializes(self):
        params = DramParams()
        dram = DramModel(params)
        dram.access(0x0, 0, is_write=False)
        second = dram.access(0x0, 0, is_write=False)
        assert second >= params.bank_busy_cycles + params.row_hit_cycles

    def test_different_banks_parallel(self):
        dram = DramModel()
        first = dram.access(0x0, 0, is_write=False)
        second = dram.access(0x40, 0, is_write=False)  # next line, next bank
        assert second == first  # both row misses, no serialization

    def test_counters(self):
        dram = DramModel()
        dram.access(0x0, 0, is_write=True)
        dram.access(0x0, 0, is_write=False)
        assert dram.stats.writes == 1
        assert dram.stats.reads == 1

    def test_bank_count(self):
        assert DramParams(ranks=2, banks_per_rank=16).num_banks == 32

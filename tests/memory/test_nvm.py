"""Tests for the NVM model and its persistent on-DIMM buffer."""

from repro.memory.nvm import NvmModel, NvmParams


def model(**kwargs) -> NvmModel:
    return NvmModel(NvmParams(**kwargs))


class TestReads:
    def test_read_latency(self):
        nvm = model()
        assert nvm.read(0x0, 100) == 100 + nvm.params.read_cycles

    def test_same_bank_reads_serialize(self):
        nvm = model(read_banks=1)
        first = nvm.read(0x0, 0)
        second = nvm.read(0x0, 0)
        assert second > first


class TestAcceptance:
    def test_accept_latency(self):
        nvm = model()
        assert nvm.accept_write(0x100, 50) == 50 + nvm.params.accept_cycles

    def test_line_writes_counted(self):
        nvm = model()
        nvm.accept_write(0x0, 0)
        nvm.accept_write(0x4000, 0)
        assert nvm.stats.line_writes_received == 2

    def test_media_write_scheduled(self):
        nvm = model()
        nvm.accept_write(0x0, 0)
        nvm.drain_all(0)
        assert nvm.stats.media_writes == 1


class TestCoalescing:
    def test_same_nvm_line_coalesces_when_drain_blocked(self):
        """Two 64B writes to one 256B line merge if the drain of the first
        has not started (bank kept busy by another line)."""
        nvm = model(write_banks=1)
        nvm.accept_write(0x0, 0)        # occupies the single bank
        nvm.accept_write(0x10000, 0)    # same bank, queued behind
        nvm.accept_write(0x10040, 1)    # same 256B line as previous: merge
        assert nvm.stats.coalesced_writes == 1
        nvm.drain_all(0)
        assert nvm.stats.media_writes == 2

    def test_different_lines_do_not_coalesce(self):
        nvm = model()
        nvm.accept_write(0x0, 0)
        nvm.accept_write(0x100, 0)
        assert nvm.stats.coalesced_writes == 0

    def test_no_coalesce_once_drain_started(self):
        nvm = model(write_banks=4)
        nvm.accept_write(0x0, 0)        # drain starts immediately
        nvm.accept_write(0x40, 10)      # same line but already draining
        assert nvm.stats.coalesced_writes == 0
        nvm.drain_all(0)
        assert nvm.stats.media_writes == 2


class TestBackpressure:
    def test_full_buffer_stalls_accept(self):
        nvm = model(buffer_slots=2, write_banks=1, accept_cycles=10)
        nvm.accept_write(0x000, 0)
        nvm.accept_write(0x100, 0)
        accept = nvm.accept_write(0x200, 0)
        # Must wait for the first drain (write_cycles after its start).
        assert accept > nvm.params.write_cycles
        assert nvm.stats.stalled_accepts == 1
        assert nvm.stats.stall_cycles > 0

    def test_occupancy_never_exceeds_slots(self):
        nvm = model(buffer_slots=4, write_banks=1)
        for index in range(32):
            nvm.accept_write(index * 0x100, index)
        assert nvm.pending_count(32) <= 4


class TestSampling:
    def test_sample_taken_per_media_write(self):
        nvm = model()
        for index in range(5):
            nvm.accept_write(index * 0x100, 0)
        nvm.drain_all(0)
        assert len(nvm.pending_samples) == 5

    def test_samples_reflect_occupancy(self):
        nvm = model(write_banks=1)
        for index in range(4):
            nvm.accept_write(index * 0x100, 0)
        nvm.drain_all(0)
        # Draining one at a time: occupancy decreases monotonically.
        assert nvm.pending_samples == sorted(nvm.pending_samples, reverse=True)

    def test_out_of_order_reap_tolerated(self):
        """Accept cycles can jitter slightly (variable cache lookup)."""
        nvm = model()
        nvm.accept_write(0x000, 100)
        nvm.accept_write(0x100, 90)   # slightly earlier call is fine
        nvm.drain_all(100)
        assert nvm.stats.media_writes == 2


class TestDrainAll:
    def test_drain_all_empties(self):
        nvm = model(write_banks=2)
        for index in range(10):
            nvm.accept_write(index * 0x100, 0)
        done = nvm.drain_all(0)
        assert nvm.pending_count(done) == 0

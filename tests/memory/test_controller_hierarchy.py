"""Tests for the memory controller and the cache hierarchy."""

import pytest

from repro.memory.controller import AddressMap, MemoryController
from repro.memory.hierarchy import CacheHierarchy, HierarchyParams
from repro.memory.persist_domain import KIND_CVAP, KIND_EVICTION

NVM = AddressMap().nvm_base


class TestAddressMap:
    def test_split(self):
        amap = AddressMap()
        assert not amap.is_nvm(0)
        assert not amap.is_nvm(amap.dram_bytes - 1)
        assert amap.is_nvm(amap.dram_bytes)
        assert amap.is_nvm(amap.total_bytes - 1)

    def test_out_of_range(self):
        amap = AddressMap()
        with pytest.raises(ValueError):
            amap.is_nvm(amap.total_bytes)
        with pytest.raises(ValueError):
            amap.is_nvm(-1)


class TestControllerRouting:
    def test_nvm_write_logged(self):
        ctrl = MemoryController()
        ctrl.write(NVM + 0x40, 100, is_eviction=False, tag="log:0")
        assert len(ctrl.persist_log) == 1
        record = ctrl.persist_log[0]
        assert record.kind == KIND_CVAP
        assert record.tag == "log:0"
        assert record.line_addr == NVM + 0x40

    def test_eviction_kind(self):
        ctrl = MemoryController()
        ctrl.write(NVM + 0x80, 100, is_eviction=True)
        assert ctrl.persist_log[0].kind == KIND_EVICTION

    def test_dram_write_not_logged(self):
        ctrl = MemoryController()
        ctrl.write(0x1000, 100, is_eviction=False)
        assert len(ctrl.persist_log) == 0

    def test_nvm_read_slower_than_dram(self):
        ctrl = MemoryController()
        dram_done = ctrl.read(0x1000, 0)
        nvm_done = ctrl.read(NVM + 0x1000, 0)
        assert nvm_done > dram_done


def hierarchy():
    return CacheHierarchy(MemoryController(), HierarchyParams())


class TestLoads:
    def test_l1_hit_is_one_cycle(self):
        h = hierarchy()
        h.l1d.insert(NVM)
        assert h.load(NVM, 100) == 101

    def test_l2_hit_latency(self):
        h = hierarchy()
        h.l2.insert(NVM)
        done = h.load(NVM, 100)
        assert done == 100 + h.l1d.latency + h.l2.latency

    def test_miss_goes_to_memory(self):
        h = hierarchy()
        done = h.load(NVM, 0)
        assert done >= 450  # NVM read latency

    def test_fill_after_miss(self):
        h = hierarchy()
        h.load(NVM, 0)
        assert h.l1d.contains(NVM)
        assert h.l2.contains(NVM)
        assert h.l3.contains(NVM)

    def test_l2_hit_promotes_to_l1(self):
        h = hierarchy()
        h.l2.insert(NVM)
        h.load(NVM, 0)
        assert h.l1d.contains(NVM)


class TestStores:
    def test_store_hit_marks_dirty(self):
        h = hierarchy()
        h.l1d.insert(NVM)
        done = h.store_commit(NVM, 100)
        assert done == 101
        assert h.l1d.clean(NVM)  # was dirty

    def test_store_miss_write_allocates(self):
        h = hierarchy()
        h.store_commit(NVM, 0)
        assert h.l1d.contains(NVM)

    def test_dirty_eviction_to_nvm_is_persist_event(self):
        """A dirty NVM line leaving L3 reaches the persistence domain."""
        params = HierarchyParams(
            l1d_size=64 * 2, l1d_assoc=1,
            l2_size=64 * 2, l2_assoc=1,
            l3_size=64 * 2, l3_assoc=1)
        ctrl = MemoryController()
        h = CacheHierarchy(ctrl, params)
        h.store_commit(NVM, 0)
        # Push enough conflicting lines through to force the dirty line out
        # of every level.
        for index in range(1, 8):
            h.store_commit(NVM + index * 64 * 2, 1000 * index)
        assert any(r.kind == KIND_EVICTION for r in ctrl.persist_log)


class TestCleanToPop:
    def test_cvap_persists_and_cleans(self):
        h = hierarchy()
        h.store_commit(NVM, 0)
        done = h.clean_to_pop(NVM, 100, tag="data:0")
        assert done > 100
        log = h.controller.persist_log
        assert log.first_with_tag("data:0") is not None
        # Dirty bit cleared everywhere: evicting it later is clean.
        assert not h.l1d.clean(NVM)

    def test_cvap_retains_line_in_cache(self):
        """Like CLWB, DC CVAP writes back but retains the line."""
        h = hierarchy()
        h.store_commit(NVM, 0)
        h.clean_to_pop(NVM, 100)
        assert h.l1d.contains(NVM)

    def test_cvap_of_absent_line_still_completes(self):
        h = hierarchy()
        done = h.clean_to_pop(NVM + 0x4000, 100, tag="x")
        assert done > 100
        assert h.controller.persist_log.first_with_tag("x") is not None

    def test_cvap_to_dram_not_logged(self):
        h = hierarchy()
        h.store_commit(0x1000, 0)
        h.clean_to_pop(0x1000, 100)
        assert len(h.controller.persist_log) == 0

"""Tests for the per-configuration code generator."""

import pytest

from repro.isa.opcodes import Opcode
from repro.isa.program import TraceBuilder
from repro.nvmfw import codegen
from repro.nvmfw.codegen import PersistOpEmitter


def emit_update(mode, op_id=0, head=None):
    builder = TraceBuilder()
    emitter = PersistOpEmitter(mode, builder)
    emitter.emit_logged_update(op_id, target_addr=0x80001000, new_value=7,
                               slot_addr=0x80002000, head_addr=head)
    return builder.trace


def opcodes_of(trace):
    return [inst.opcode for inst in trace]


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PersistOpEmitter("bogus", TraceBuilder())

    def test_dsb_mode_has_dsb_after_log_persist(self):
        trace = emit_update(codegen.MODE_DSB)
        opcodes = opcodes_of(trace)
        dsb_index = opcodes.index(Opcode.DSB_SY)
        cvap_index = opcodes.index(Opcode.DC_CVAP)
        assert cvap_index < dsb_index
        # The data store comes after the barrier (Figure 4).
        str_index = opcodes.index(Opcode.STR)
        assert dsb_index < str_index

    def test_dmb_st_mode(self):
        opcodes = opcodes_of(emit_update(codegen.MODE_DMB_ST))
        assert Opcode.DMB_ST in opcodes
        assert Opcode.DSB_SY not in opcodes

    def test_unsafe_mode_has_no_ordering(self):
        opcodes = opcodes_of(emit_update(codegen.MODE_NONE))
        for barrier in (Opcode.DSB_SY, Opcode.DMB_ST, Opcode.DMB_SY):
            assert barrier not in opcodes
        assert Opcode.STR_EDE not in opcodes

    def test_ede_mode_matches_figure7(self):
        trace = emit_update(codegen.MODE_EDE)
        opcodes = opcodes_of(trace)
        assert Opcode.DSB_SY not in opcodes
        assert Opcode.DC_CVAP_EDE in opcodes
        assert Opcode.STR_EDE in opcodes
        producer = next(i for i in trace if i.opcode is Opcode.DC_CVAP_EDE)
        consumer = next(i for i in trace if i.opcode is Opcode.STR_EDE)
        assert producer.edk_def != 0
        assert consumer.edk_use == producer.edk_def


class TestTags:
    def test_persist_tags(self):
        trace = emit_update(codegen.MODE_DSB, op_id=9)
        comments = [i.comment for i in trace if i.comment]
        assert codegen.log_tag(9) in comments
        assert codegen.store_tag(9) in comments
        assert codegen.data_tag(9) in comments

    def test_memory_instructions_carry_addresses(self):
        for mode in codegen.ALL_MODES:
            for inst in emit_update(mode):
                if inst.is_memory:
                    assert inst.addr is not None


class TestReservation:
    def test_reserve_emits_head_load_and_bump(self):
        trace = emit_update(codegen.MODE_DSB, head=0x40000000)
        opcodes = opcodes_of(trace)
        assert Opcode.LDR in opcodes     # head load
        assert Opcode.CMP in opcodes     # bounds check
        head_stores = [i for i in trace if i.is_store and i.addr == 0x40000000]
        assert len(head_stores) == 1

    def test_no_reservation_without_head(self):
        trace = emit_update(codegen.MODE_DSB, head=None)
        assert Opcode.LDR in opcodes_of(trace)  # only the element load
        loads = [i for i in trace if i.opcode is Opcode.LDR]
        assert len(loads) == 1


class TestCommit:
    def emit_commit(self, mode):
        builder = TraceBuilder()
        emitter = PersistOpEmitter(mode, builder)
        emitter.emit_commit(3, commit_addr=0x80000000)
        return builder.trace

    def test_dsb_commit_is_double_fenced(self):
        opcodes = opcodes_of(self.emit_commit(codegen.MODE_DSB))
        assert opcodes.count(Opcode.DSB_SY) == 2

    def test_ede_commit_uses_waits(self):
        trace = self.emit_commit(codegen.MODE_EDE)
        opcodes = opcodes_of(trace)
        assert Opcode.WAIT_ALL_KEYS in opcodes
        assert Opcode.WAIT_KEY in opcodes
        wait_key = next(i for i in trace if i.opcode is Opcode.WAIT_KEY)
        producer = next(i for i in trace if i.opcode is Opcode.DC_CVAP_EDE)
        assert wait_key.edk_use == producer.edk_def

    def test_unsafe_commit_has_no_waits(self):
        opcodes = opcodes_of(self.emit_commit(codegen.MODE_NONE))
        assert Opcode.WAIT_ALL_KEYS not in opcodes
        assert Opcode.DSB_SY not in opcodes

    def test_commit_tag(self):
        trace = self.emit_commit(codegen.MODE_DSB)
        comments = [i.comment for i in trace if i.comment]
        assert codegen.commit_tag(3) in comments


class TestKeyRotation:
    def test_distinct_ops_get_distinct_keys(self):
        builder = TraceBuilder()
        emitter = PersistOpEmitter(codegen.MODE_EDE, builder)
        for op in range(3):
            emitter.emit_logged_update(op, 0x80001000 + 64 * op, op,
                                       0x80002000 + 16 * op)
        producers = [i for i in builder.trace
                     if i.opcode is Opcode.DC_CVAP_EDE and "log" in (i.comment or "")]
        keys = [p.edk_def for p in producers]
        assert len(set(keys)) == 3

    def test_init_flush_produces_key_only_in_ede_mode(self):
        for mode, expect_key in ((codegen.MODE_EDE, True),
                                 (codegen.MODE_DSB, False)):
            builder = TraceBuilder()
            emitter = PersistOpEmitter(mode, builder)
            emitter.emit_flush(0x80003000, "init:0")
            cvap = next(i for i in builder.trace if i.is_writeback)
            assert (cvap.edk_def != 0) == expect_key

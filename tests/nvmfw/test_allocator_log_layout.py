"""Tests for the NVM layout, persistent heap and undo log."""

import pytest

from repro.nvmfw.allocator import OutOfPersistentMemory, PersistentHeap
from repro.nvmfw.layout import DEFAULT_LAYOUT, LOG_ENTRY_BYTES, NvmLayout
from repro.nvmfw.undo_log import UndoLog, UndoLogFull


class TestLayout:
    def test_regions_do_not_overlap(self):
        DEFAULT_LAYOUT.validate()
        assert DEFAULT_LAYOUT.log_base >= (
            DEFAULT_LAYOUT.tx_meta_base + DEFAULT_LAYOUT.tx_meta_bytes)
        assert DEFAULT_LAYOUT.heap_base >= (
            DEFAULT_LAYOUT.log_base + DEFAULT_LAYOUT.log_bytes)

    def test_everything_in_nvm(self):
        from repro.memory.controller import AddressMap
        amap = AddressMap()
        assert amap.is_nvm(DEFAULT_LAYOUT.tx_meta_base)
        assert amap.is_nvm(DEFAULT_LAYOUT.heap_base)

    def test_log_head_is_volatile_dram(self):
        from repro.memory.controller import AddressMap
        assert not AddressMap().is_nvm(DEFAULT_LAYOUT.log_head_addr)

    def test_capacity(self):
        assert (DEFAULT_LAYOUT.log_capacity
                == DEFAULT_LAYOUT.log_bytes // LOG_ENTRY_BYTES)

    def test_invalid_layout_rejected(self):
        bad = NvmLayout(heap_base=DEFAULT_LAYOUT.log_base)
        with pytest.raises(ValueError):
            bad.validate()


class TestHeap:
    def test_alloc_returns_heap_addresses(self):
        heap = PersistentHeap()
        addr = heap.alloc(64)
        assert heap.contains(addr)
        assert addr >= DEFAULT_LAYOUT.heap_base

    def test_allocations_do_not_overlap(self):
        heap = PersistentHeap()
        first = heap.alloc(64)
        second = heap.alloc(64)
        assert abs(second - first) >= 64

    def test_alignment(self):
        heap = PersistentHeap()
        assert heap.alloc(24, align=64) % 64 == 0
        assert heap.alloc(8) % 8 == 0

    def test_size_rounded_to_8(self):
        heap = PersistentHeap()
        first = heap.alloc(1)
        second = heap.alloc(1)
        assert second - first >= 8

    def test_free_then_realloc_reuses(self):
        heap = PersistentHeap()
        addr = heap.alloc(48)
        heap.free(addr, 48)
        assert heap.alloc(48) == addr

    def test_free_list_is_per_size(self):
        heap = PersistentHeap()
        addr = heap.alloc(48)
        heap.free(addr, 48)
        other = heap.alloc(96)
        assert other != addr

    def test_accounting(self):
        heap = PersistentHeap()
        addr = heap.alloc(64)
        assert heap.live_bytes == 64
        heap.free(addr, 64)
        assert heap.live_bytes == 0
        assert heap.allocated_bytes == 64

    def test_invalid_requests(self):
        heap = PersistentHeap()
        with pytest.raises(ValueError):
            heap.alloc(0)
        with pytest.raises(ValueError):
            heap.alloc(8, align=3)
        with pytest.raises(ValueError):
            heap.free(0x10, 8)

    def test_exhaustion(self):
        layout = NvmLayout()
        heap = PersistentHeap(layout)
        with pytest.raises(OutOfPersistentMemory):
            heap.alloc(layout.heap_bytes + 64)


class TestUndoLog:
    def test_slots_are_sequential_16_bytes(self):
        log = UndoLog()
        first = log.reserve_slot()
        second = log.reserve_slot()
        assert second - first == LOG_ENTRY_BYTES
        assert first == DEFAULT_LAYOUT.log_base

    def test_record_tracks_entries(self):
        log = UndoLog()
        slot = log.reserve_slot()
        entry = log.record(slot, 0x1000, 42)
        assert entry.target_addr == 0x1000
        assert entry.original_value == 42
        assert len(log) == 1

    def test_reset_reuses_slots(self):
        log = UndoLog()
        first = log.reserve_slot()
        log.reset()
        assert log.reserve_slot() == first
        assert len(log) == 0

    def test_overflow(self):
        layout = NvmLayout()
        log = UndoLog(layout)
        log._head = layout.log_capacity  # simulate exhaustion
        with pytest.raises(UndoLogFull):
            log.reserve_slot()

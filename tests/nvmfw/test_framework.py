"""Tests for the persistent framework facade."""

import pytest

from repro.consistency.obligations import LOG_BEFORE_STORE, PERSIST_BEFORE_COMMIT
from repro.nvmfw import codegen
from repro.nvmfw.framework import PersistentFramework


def framework(mode="dsb"):
    return PersistentFramework(mode)


class TestFunctionalMemory:
    def test_raw_store_peek(self):
        fw = framework()
        fw.raw_store(0x80001000, 99)
        assert fw.peek(0x80001000) == 99

    def test_peek_default_zero(self):
        assert framework().peek(0x80005000) == 0

    def test_read_emits_instructions(self):
        fw = framework()
        fw.raw_store(0x80001000, 7)
        before = len(fw.builder)
        assert fw.read(0x80001000) == 7
        assert len(fw.builder) == before + 2  # mov + ldr

    def test_values_truncate_to_64_bits(self):
        fw = framework()
        fw.raw_store(0x80001000, 1 << 70)
        assert fw.peek(0x80001000) == 0


class TestTransactions:
    def test_write_outside_txn_rejected(self):
        fw = framework()
        with pytest.raises(RuntimeError):
            fw.write(0x80001000, 1)
        with pytest.raises(RuntimeError):
            fw.write_init(0x80001000, 1)

    def test_nested_txn_rejected(self):
        fw = framework()
        fw.tx_begin()
        with pytest.raises(RuntimeError):
            fw.tx_begin()

    def test_commit_outside_txn_rejected(self):
        with pytest.raises(RuntimeError):
            framework().tx_commit()

    def test_finish_inside_txn_rejected(self):
        fw = framework()
        fw.tx_begin()
        with pytest.raises(RuntimeError):
            fw.finish()

    def test_txn_ids_increment(self):
        fw = framework()
        assert fw.tx_begin() == 0
        fw.tx_commit()
        assert fw.tx_begin() == 1


class TestWrite:
    def test_functional_update(self):
        fw = framework()
        fw.raw_store(0x80200000, 5)
        fw.tx_begin()
        fw.write(0x80200000, 6)
        assert fw.peek(0x80200000) == 6

    def test_log_entry_records_old_value_with_epoch(self):
        fw = framework()
        fw.raw_store(0x80200000, 5)
        fw.tx_begin()
        fw.write(0x80200000, 6)
        slot = fw.log.entries[0].slot_addr
        assert fw.peek(slot) == 0x80200000 | 0  # txn 0 epoch
        assert fw.peek(slot + 8) == 5
        fw.tx_commit()
        fw.tx_begin()
        fw.write(0x80200000, 7)
        slot = fw.log.entries[0].slot_addr
        assert fw.peek(slot) & 7 == 1  # txn 1 epoch

    def test_obligations_registered(self):
        fw = framework()
        fw.tx_begin()
        fw.write(0x80200000, 6)
        fw.tx_commit()
        kinds = [o.kind for o in fw.obligations]
        assert kinds.count(LOG_BEFORE_STORE) == 1
        assert kinds.count(PERSIST_BEFORE_COMMIT) == 2  # log + data tags

    def test_snapshots_capture_line_content(self):
        fw = framework()
        fw.tx_begin()
        fw.write(0x80200000, 6)
        snap = fw.line_snapshots[codegen.data_tag(0)]
        assert snap[0x80200000] == 6


class TestInitPath:
    def test_write_init_emits_no_log(self):
        fw = framework()
        fw.tx_begin()
        before_entries = len(fw.log.entries)
        fw.write_init(fw.alloc(8), 3)
        assert len(fw.log.entries) == before_entries

    def test_flush_init_covers_all_lines(self):
        fw = framework()
        fw.tx_begin()
        addr = fw.alloc(200, align=64)
        fw.flush_init(addr, 200)
        flushes = [i for i in fw.builder.trace if i.is_writeback]
        assert len(flushes) == 4  # 200 bytes spans 4 lines from 64B-aligned

    def test_init_tags_become_commit_obligations(self):
        fw = framework()
        fw.tx_begin()
        addr = fw.alloc(8)
        fw.write_init(addr, 1)
        fw.flush_init(addr, 8)
        fw.tx_commit()
        init_obligations = [
            o for o in fw.obligations
            if o.kind == PERSIST_BEFORE_COMMIT and o.first_tag.startswith("init")
        ]
        assert len(init_obligations) == 1


class TestFinish:
    def test_built_workload_contents(self):
        fw = framework()
        fw.raw_store(0x80200000, 1)
        fw.tx_begin()
        fw.write(0x80200000, 2)
        fw.tx_commit()
        built = fw.finish()
        assert built.trace[-1].opcode.name == "HALT"
        assert built.ops == 1
        assert built.txns == 1
        assert built.baseline_memory[0x80200000] == 1
        assert built.final_memory[0x80200000] == 2

    def test_warm_lines_cover_memory(self):
        fw = framework()
        fw.raw_store(0x80200000, 1)
        fw.tx_begin()
        fw.write(0x80200000, 2)
        fw.tx_commit()
        built = fw.finish()
        lines = built.warm_lines()
        assert (0x80200000 & ~63) in lines
        assert lines == sorted(lines)

    def test_tracked_state_snapshots(self):
        fw = framework()
        fw.raw_store(0x80200000, 1)
        fw.track_state(lambda: {0x80200000: fw.peek(0x80200000)})
        fw.tx_begin()
        fw.write(0x80200000, 2)
        fw.tx_commit()
        fw.tx_begin()
        fw.write(0x80200000, 3)
        fw.tx_commit()
        built = fw.finish()
        assert built.committed_states[0][0x80200000] == 2
        assert built.committed_states[1][0x80200000] == 3

"""The opt-in REPRO_STATIC_CHECK build gate in repro.workloads.base."""

import pytest

from repro.analysis.persist import derive_obligations
from repro.analysis.report import StaticCheckError
from repro.isa import instructions as ops
from repro.nvmfw.layout import DEFAULT_LAYOUT
from repro.nvmfw.framework import BuiltWorkload
from repro.workloads import base as workloads_base


def _bad_built():
    """A hand-rolled build whose log persist is statically unordered."""
    trace = [
        ops.mov_imm(2, 64),
        ops.dc_cvap(2, comment="log:0"),
        ops.store(3, 1, comment="store:0"),
        ops.halt(),
    ]
    obligations = derive_obligations(trace)
    assert obligations, "fixture must carry a derived obligation"
    return BuiltWorkload(
        trace=trace,
        obligations=obligations,
        line_snapshots={},
        committed_states=[],
        final_memory={},
        baseline_memory={},
        layout=DEFAULT_LAYOUT,
        ops=1,
        txns=0,
    )


@pytest.fixture
def bad_workload():
    name = "_gate_test_bad"
    workloads_base._REGISTRY[name] = lambda mode, scale: _bad_built()
    try:
        yield name
    finally:
        del workloads_base._REGISTRY[name]


def test_gate_off_by_default(bad_workload, monkeypatch):
    monkeypatch.delenv("REPRO_STATIC_CHECK", raising=False)
    built = workloads_base.build(bad_workload, "ede", workloads_base.TEST_SCALE)
    assert built.ops == 1

    monkeypatch.setenv("REPRO_STATIC_CHECK", "0")
    workloads_base.build(bad_workload, "ede", workloads_base.TEST_SCALE)


def test_gate_rejects_statically_violated_build(bad_workload, monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_CHECK", "1")
    with pytest.raises(StaticCheckError) as excinfo:
        workloads_base.build(bad_workload, "ede", workloads_base.TEST_SCALE)
    report = excinfo.value.report
    assert report.target == bad_workload
    assert report.mode == "ede"
    assert [f.check for f in report.errors] == ["persist-ordering"]
    assert "log-before-store" in str(excinfo.value)


def test_gate_accepts_correct_builds(monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_CHECK", "1")
    for mode in ("dsb", "ede"):
        built = workloads_base.build("update", mode, workloads_base.TEST_SCALE)
        assert built.trace

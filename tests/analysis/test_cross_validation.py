"""Static prover vs. dynamic checker: GUARANTEED must never be refuted.

The prover's soundness contract (see ``repro.analysis.persist``) is that
a statically GUARANTEED obligation can never be reported violated by the
dynamic consistency checker under any safe configuration.  This test
builds each workload once, proves its obligations statically, simulates
the same trace under B (dsb), IQ and WB (ede), and cross-references the
two verdicts obligation-by-obligation.
"""

import pytest

from repro.analysis.dataflow import KeyDependenceAnalysis
from repro.analysis.persist import GUARANTEED, PersistProver
from repro.analysis.report import analyze_built
from repro.harness.configs import CONFIG_BY_NAME
from repro.harness.runner import run_one
from repro.workloads import base as workloads_base

SAFE_CONFIGS = ("B", "IQ", "WB")
WORKLOADS = ("update", "swap")

CASES = [(w, c) for w in WORKLOADS for c in SAFE_CONFIGS]


def _prove(built, mode):
    from repro.analysis.cfg import build_cfg

    cfg = build_cfg(built.trace)
    analysis = KeyDependenceAnalysis(built.trace, cfg)
    return PersistProver(built.trace, cfg, analysis).prove_all(built.obligations)


@pytest.mark.parametrize("workload,config_name", CASES,
                         ids=["%s-%s" % wc for wc in CASES])
def test_guaranteed_obligations_pass_dynamic_checker(workload, config_name):
    config = CONFIG_BY_NAME[config_name]
    built = workloads_base.build(workload, config.fence_mode,
                                 workloads_base.TEST_SCALE)
    verdicts = _prove(built, config.fence_mode)
    assert verdicts, "workload emitted no obligations"

    # Reuse the same built trace so the static and dynamic sides check
    # the identical obligation objects.
    result = run_one(workload, config, workloads_base.TEST_SCALE, built=built)
    dynamically_violated = {
        id(v.obligation) for v in result.consistency.violations
    }

    refuted = [
        v for v in verdicts
        if v.verdict == GUARANTEED and id(v.obligation) in dynamically_violated
    ]
    assert not refuted, (
        "statically GUARANTEED obligations refuted dynamically:\n"
        + "\n".join(str(v.obligation) for v in refuted)
    )

    # Under these safe configurations the prover discharges every
    # obligation outright — pin that strength, not just soundness.
    assert all(v.verdict == GUARANTEED for v in verdicts), [
        (v.verdict, str(v.obligation)) for v in verdicts if v.verdict != GUARANTEED
    ]
    assert result.consistency.observed_safe


@pytest.mark.parametrize("workload", WORKLOADS)
def test_static_report_matches_dynamic_under_ede(workload):
    # The full report path (what the CLI and the REPRO_STATIC_CHECK gate
    # run) must agree with the raw prover: zero violated, zero errors.
    config = CONFIG_BY_NAME["IQ"]
    built = workloads_base.build(workload, config.fence_mode,
                                 workloads_base.TEST_SCALE)
    report = analyze_built(built, target=workload, mode=config.fence_mode)
    assert report.verdict_counts["violated"] == 0
    assert not report.errors

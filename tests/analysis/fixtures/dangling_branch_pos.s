; Positive: the consumer's producer exists on only one path.
; The taken branch skips the dc cvap, so the str consumes EDK#1
; with no live producer on that path -> dangling-consumer warning.
  cmp x0, #0
  b.eq skip
  dc cvap (1, 0), x2
skip:
  str (0, 1), x3, [x1]
  halt

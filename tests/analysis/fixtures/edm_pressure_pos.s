; Positive: fifteen simultaneously-live productions fill every EDM
; entry -> edm-pressure warning at the fifteenth producer.  The
; wait_all_keys keeps the keys from also being dead.
  dc cvap (1, 0), x2
  dc cvap (2, 0), x2
  dc cvap (3, 0), x2
  dc cvap (4, 0), x2
  dc cvap (5, 0), x2
  dc cvap (6, 0), x2
  dc cvap (7, 0), x2
  dc cvap (8, 0), x2
  dc cvap (9, 0), x2
  dc cvap (10, 0), x2
  dc cvap (11, 0), x2
  dc cvap (12, 0), x2
  dc cvap (13, 0), x2
  dc cvap (14, 0), x2
  dc cvap (15, 0), x2
  wait_all_keys
  halt

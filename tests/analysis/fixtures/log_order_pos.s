; Positive: the log persist and the data store carry tags but nothing
; orders them -- no fence, no EDE edge, no wait.  The derived
; LOG_BEFORE_STORE obligation is statically VIOLATED, which is an
; error-severity finding (an untagged-mode analysis assumes the code
; claims safety).
  mov x2, #64
  dc cvap x2            ;@ log:0
  str x3, [x1]          ;@ store:0
  halt

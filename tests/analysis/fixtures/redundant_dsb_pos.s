; Positive: the DSB SY separates a producer from the consumer that
; already waits on it through the EDM, so every store-class ordering
; across the fence is enforced without it -> redundant-fence info
; (the paper's candidate elimination).
  dc cvap (1, 0), x2
  dsb sy
  str (0, 1), x3, [x1]
  halt

; Negative: both paths produce EDK#1 before the join-point consumer.
; A linear scan of the fall-through path alone would also accept this,
; but the analyzer must prove it across the diamond.
  cmp x0, #0
  b.eq other
  dc cvap (1, 0), x2
  b done
other:
  dc cvap (1, 0), x3
done:
  str (0, 1), x4, [x1]
  halt

; Positive: the loop body redefines EDK#1 every iteration while the
; previous iteration's production is still pending (no consumer, no
; wait) -> producer-overwrite warning, annotated loop-carried, plus a
; dead-key warning (nothing ever consumes the key).
  mov x0, #4
loop:
  dc cvap (1, 0), x2
  sub x0, x0, #1
  cmp x0, #0
  b.ne loop
  halt

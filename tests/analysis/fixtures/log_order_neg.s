; Negative: the store consumes the log persist's key (Figure 7), so the
; derived LOG_BEFORE_STORE obligation is statically GUARANTEED by the
; execution dependence alone -- no fence needed.
  dc cvap (1, 0), x2    ;@ log:0
  str (0, 1), x3, [x1]  ;@ store:0
  halt

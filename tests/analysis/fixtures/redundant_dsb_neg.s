; Negative: no EDE edge covers the persist -> the DSB SY is the only
; thing ordering the flush against the later store, so it must stay.
  mov x2, #64
  dc cvap x2
  dsb sy
  str x3, [x1]
  halt

; Negative: the loop consumes EDK#1 before the back edge redefines it,
; so the redefinition clobbers nothing pending.
  mov x0, #4
loop:
  dc cvap (1, 0), x2
  str (0, 1), x3, [x1]
  sub x0, x0, #1
  cmp x0, #0
  b.ne loop
  halt

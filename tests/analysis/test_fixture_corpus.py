"""Seeded-bug fixture corpus: one positive and one negative per check.

Each positive fixture plants exactly the defect its check is meant to
catch; its negative twin is the minimal correct variant.  The analyzer
must flag the former and stay silent on the latter — this pins both the
detection and the false-positive behavior of every check.
"""

import os

import pytest

from repro.analysis import ERROR, INFO, WARNING
from repro.analysis.persist import GUARANTEED, VIOLATED
from repro.analysis.report import analyze_program

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: (fixture stem, check id, severity the positive variant must produce).
CORPUS = [
    ("dangling_branch", "dangling-consumer", WARNING),
    ("loop_clobber", "producer-overwrite", WARNING),
    ("edm_pressure", "edm-pressure", WARNING),
    ("log_order", "persist-ordering", ERROR),
    ("redundant_dsb", "redundant-fence", INFO),
]


def _analyze(stem, variant):
    path = os.path.join(FIXTURES, "%s_%s.s" % (stem, variant))
    return analyze_program(path)


def _of_check(report, check):
    return [f for f in report.findings if f.check == check]


@pytest.mark.parametrize("stem,check,severity", CORPUS, ids=[c[0] for c in CORPUS])
def test_positive_fixture_triggers_check(stem, check, severity):
    report = _analyze(stem, "pos")
    hits = _of_check(report, check)
    assert hits, "expected a %s finding in %s_pos.s, got %s" % (
        check,
        stem,
        report.findings,
    )
    assert all(f.severity == severity for f in hits)


@pytest.mark.parametrize("stem,check,severity", CORPUS, ids=[c[0] for c in CORPUS])
def test_negative_fixture_is_silent(stem, check, severity):
    report = _analyze(stem, "neg")
    assert not _of_check(report, check), (
        "%s_neg.s must not trigger %s" % (stem, check)
    )
    assert not report.errors


def test_dangling_branch_is_path_sensitive():
    # The producer is skipped on one arm only — the linear verifier could
    # never see this; the message must say so.
    report = _analyze("dangling_branch", "pos")
    (finding,) = _of_check(report, "dangling-consumer")
    assert "on some path" in finding.message


def test_loop_clobber_is_flagged_loop_carried():
    report = _analyze("loop_clobber", "pos")
    (finding,) = _of_check(report, "producer-overwrite")
    assert "loop-carried" in finding.message
    # The clobbered producer is also dead: no consumer ever drains it.
    assert _of_check(report, "dead-key")


def test_edm_pressure_exactly_at_capacity():
    pos = _analyze("edm_pressure", "pos")
    assert len(_of_check(pos, "edm-pressure")) == 1
    neg = _analyze("edm_pressure", "neg")
    assert not neg.findings


def test_log_order_verdicts():
    # ;@ tags derive a LOG_BEFORE_STORE obligation; the prover must call
    # the unfenced, key-less variant violated and the EDE variant
    # guaranteed (the paper's Figure 7 transformation).
    pos = _analyze("log_order", "pos")
    assert [v.verdict for v in pos.verdicts] == [VIOLATED]
    assert pos.errors
    neg = _analyze("log_order", "neg")
    assert [v.verdict for v in neg.verdicts] == [GUARANTEED]
    assert not neg.findings


def test_redundant_dsb_fence_report():
    pos = _analyze("redundant_dsb", "pos")
    assert pos.fence_report.total_full_fences == 1
    assert pos.fence_report.redundant_count == 1
    neg = _analyze("redundant_dsb", "neg")
    assert neg.fence_report.total_full_fences == 1
    assert neg.fence_report.redundant_count == 0
    assert not neg.findings

"""CLI contract: exit codes, JSON round-trip, SARIF shape, file output."""

import json
import os

import pytest

from repro.analysis.__main__ import main
from repro.analysis.report import TOOL_NAME, AnalysisReport

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


class TestExitCodes:
    def test_clean_target_exits_zero(self):
        assert main([_fixture("log_order_neg.s")]) == 0

    def test_error_finding_exits_one(self, capsys):
        assert main([_fixture("log_order_pos.s")]) == 1
        assert "severity" in capsys.readouterr().err

    def test_fail_on_warning_promotes_warnings(self):
        path = _fixture("loop_clobber_pos.s")
        assert main([path]) == 0
        assert main([path, "--fail-on", "warning"]) == 1
        assert main([path, "--fail-on", "never"]) == 0

    def test_unknown_target_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["no_such_workload"])
        assert excinfo.value.code == 2

    def test_unknown_mode_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["update", "--modes", "sfence"])
        assert excinfo.value.code == 2

    def test_workload_target_clean_under_ede(self):
        assert main(["update", "--modes", "ede", "--scale", "test"]) == 0

    def test_list_checks(self, capsys):
        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "persist-ordering" in out
        assert "redundant-fence" in out


class TestJsonOutput:
    def test_round_trip_through_output_file(self, tmp_path):
        out = tmp_path / "report.json"
        code = main([
            _fixture("log_order_pos.s"),
            _fixture("redundant_dsb_pos.s"),
            "--format", "json",
            "--output", str(out),
            "--fail-on", "never",
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["tool"]["name"] == TOOL_NAME
        reports = [AnalysisReport.from_dict(r) for r in data["reports"]]
        assert len(reports) == 2

        violated = reports[0]
        assert violated.target.endswith("log_order_pos.s")
        assert violated.counts["error"] == 1
        assert [f.check for f in violated.errors] == ["persist-ordering"]

        redundant = reports[1]
        assert redundant.counts["error"] == 0
        assert "redundant-fence" in {f.check for f in redundant.findings}
        # Obligation and fence summaries survive serialization too.
        raw = data["reports"][1]
        assert raw["fences"]["total_full_fences"] == 1
        assert raw["fences"]["redundant_sites"] == [1]

    def test_exit_nonzero_iff_errors_present(self, tmp_path):
        out = tmp_path / "report.json"
        argv = ["--format", "json", "--output", str(out)]
        assert main([_fixture("log_order_neg.s")] + argv) == 0
        assert main([_fixture("log_order_pos.s")] + argv) == 1


class TestSarifOutput:
    def test_sarif_shape(self, tmp_path):
        out = tmp_path / "report.sarif"
        main([
            _fixture("log_order_pos.s"),
            "--format", "sarif",
            "--output", str(out),
            "--fail-on", "never",
        ])
        data = json.loads(out.read_text())
        assert data["version"] == "2.1.0"
        (run,) = data["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "persist-ordering" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "persist-ordering"
        assert result["level"] == "error"


class TestEdmCapacityOverride:
    def test_override_shifts_pressure_threshold(self, capsys):
        path = _fixture("edm_pressure_neg.s")
        # 14 live keys: silent at the architectural capacity of 15 ...
        assert main([path, "--fail-on", "warning"]) == 0
        capsys.readouterr()
        # ... but over a hypothetical 8-entry EDM the same code overflows.
        assert main([path, "--fail-on", "warning", "--edm-capacity", "8"]) == 1

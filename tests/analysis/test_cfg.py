"""Tests for CFG construction: blocks, successors, dominators, loops."""

import pytest

from repro.analysis.cfg import EXIT, CfgError, build_cfg
from repro.isa import instructions as ops
from repro.isa.assembler import assemble
from repro.isa.opcodes import Opcode


def _cfg(source):
    program = assemble(source)
    return build_cfg(program.instructions, program.labels)


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg = _cfg("""
            mov x0, #1
            mov x1, #2
            halt
        """)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == [EXIT]

    def test_diamond(self):
        cfg = _cfg("""
            cmp x0, #0
            b.eq other
            mov x1, #1
            b done
        other:
            mov x1, #2
        done:
            halt
        """)
        # entry, then-arm, else-arm, join.
        assert len(cfg.blocks) == 4
        entry, then_arm, else_arm, join = cfg.blocks
        assert sorted(entry.successors) == [then_arm.index, else_arm.index]
        assert then_arm.successors == [join.index]
        assert else_arm.successors == [join.index]
        assert sorted(join.predecessors) == [then_arm.index, else_arm.index]
        doms = cfg.dominators()
        assert doms[join.index] == {entry.index, join.index}

    def test_loop_back_edge_and_loop_blocks(self):
        cfg = _cfg("""
            mov x0, #4
        loop:
            sub x0, x0, #1
            cmp x0, #0
            b.ne loop
            halt
        """)
        back = cfg.back_edges()
        assert len(back) == 1
        tail, head = back[0]
        assert cfg.blocks[head].start == 1
        assert head in cfg.loop_blocks() and tail in cfg.loop_blocks()
        assert cfg.blocks[0].index not in cfg.loop_blocks()

    def test_unconditional_branch_has_no_fallthrough_edge(self):
        cfg = _cfg("""
            b end
            mov x0, #1
        end:
            halt
        """)
        entry = cfg.blocks[0]
        assert len(entry.successors) == 1
        skipped = cfg.block_of(1)
        assert skipped.index not in cfg.reachable_blocks()

    def test_bl_gets_both_target_and_fallthrough(self):
        cfg = _cfg("""
            bl callee
            halt
        callee:
            ret
        """)
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2

    def test_undefined_label_raises(self):
        program = assemble("b nowhere\nhalt")
        with pytest.raises(CfgError):
            build_cfg(program.instructions, program.labels)

    def test_trace_branch_without_target_falls_through(self):
        # Dynamic traces carry resolved branches with target=None (see the
        # hazard workload); the recorded path is the fall-through.
        trace = [
            ops.cmp(0, imm=1),
            ops.Instruction(Opcode.B_NE, target=None, imm=0),
            ops.mov_imm(1, 7),
            ops.halt(),
        ]
        cfg = build_cfg(trace)
        branch_block = cfg.block_of(1)
        assert branch_block.successors == [cfg.block_of(2).index]

    def test_successor_sites_cross_blocks(self):
        cfg = _cfg("""
            cmp x0, #0
            b.eq done
            mov x1, #1
        done:
            halt
        """)
        # The conditional branch may be followed by either block start.
        assert sorted(cfg.successor_sites(1)) == [2, 3]
        # Mid-block: the next instruction only.
        assert cfg.successor_sites(0) == [1]

    def test_empty_sequence(self):
        cfg = build_cfg([])
        assert cfg.blocks == []

"""The proof-guided fence autotuner (repro.analysis.autotune).

Covers the acceptance claims end to end at test scale:

* every safe configuration of every transactional workload yields a
  strictly smaller ordering footprint (or an explicit proven-minimal
  report),
* every emitted variant is validated — recovered-state digest
  bit-identical to the unoptimized serial run, crash sweep consistent
  where recovery validation is supported,
* the rewriter's safety rails (tagged persists, branches, the zero key)
  cannot be bypassed by the search, and
* the search obligations pin every inter-transaction barrier except the
  final one.
"""

import pytest

from repro.analysis.autotune import (
    COMMIT_BEFORE_NEXT_TXN,
    INIT_BEFORE_PUBLISH,
    OPTIMIZED,
    PROVEN_MINIMAL,
    SKIPPED,
    autotune_workload,
    derive_search_obligations,
    ordering_breakdown,
    program_digest,
    to_findings,
    used_keys,
)
from repro.analysis.findings import INFO, WARNING
from repro.isa import instructions as ops
from repro.nvmfw import codegen
from repro.workloads.base import TEST_SCALE, build

SAFE_CONFIGS = ("B", "IQ", "WB")


# --- search obligations -------------------------------------------------------


def test_commit_obligations_span_transactions():
    trace = [
        ops.dc_cvap(2, comment="log:0"),
        ops.dc_cvap(2, comment="commit:0"),
        ops.dsb_sy(),
        ops.dc_cvap(2, comment="log:1"),
        ops.dc_cvap(2, comment="data:1"),
        ops.dc_cvap(2, comment="commit:1"),
        ops.halt(),
    ]
    obligations = derive_search_obligations(trace)
    commit = [o for o in obligations if o.kind == COMMIT_BEFORE_NEXT_TXN]
    # commit:0 must precede log:1 and data:1; commit:1 has no successor.
    assert {(o.first_tag, o.second_tag) for o in commit} == {
        ("commit:0", "log:1"), ("commit:0", "data:1"),
    }


def test_publication_obligation_pairs_init_with_publish():
    trace = [
        ops.store(2, 1, comment="init:0"),
        ops.dmb_st(),
        ops.store(3, 1, comment="publish:0"),
        ops.store(4, 1, comment="init:7"),  # no matching publish
        ops.halt(),
    ]
    obligations = derive_search_obligations(trace)
    pub = [o for o in obligations if o.kind == INIT_BEFORE_PUBLISH]
    assert [(o.first_tag, o.second_tag) for o in pub] == [
        ("init:0", "publish:0")
    ]


# --- program accounting -------------------------------------------------------


def test_ordering_breakdown_counts_by_class():
    trace = [ops.dsb_sy(), ops.dmb_sy(), ops.dmb_st(), ops.wait_key(3),
             ops.wait_all_keys(), ops.store(2, 1), ops.halt()]
    assert ordering_breakdown(trace) == {
        "full_fences": 2, "dmb_st": 1, "waits": 2,
    }


def test_used_keys_ignores_zero_key():
    trace = [ops.dc_cvap_ede(2, edk_def=5, edk_use=0),
             ops.wait_key(5), ops.store(2, 1), ops.halt()]
    assert used_keys(trace) == [5]


def test_program_digest_tracks_content():
    a = [ops.dsb_sy(), ops.halt()]
    b = [ops.dmb_sy(), ops.halt()]
    assert program_digest(a) != program_digest(b)
    assert program_digest(a) == program_digest(list(a))


# --- the acceptance matrix ----------------------------------------------------


@pytest.mark.parametrize(
    "workload", ["update", "swap", "btree", "ctree", "rbtree", "rtree"])
@pytest.mark.parametrize("config", SAFE_CONFIGS)
def test_safe_configs_shrink_or_prove_minimal(workload, config):
    report = autotune_workload(workload, config, scale=TEST_SCALE)
    assert report.status in (OPTIMIZED, PROVEN_MINIMAL), report.reason
    before = sum(report.ordering_before.values())
    after = sum(report.ordering_after.values())
    if report.status == OPTIMIZED:
        assert after < before or report.key_map
        assert report.digest_match is True
        assert report.program_after != report.program_before
    else:
        assert after == before
        assert report.exhaustive


def test_update_b_removes_only_the_final_trailing_fence():
    """Derived commit obligations pin every trailing DSB but the last
    transaction's — that one has no successor to order against."""
    report = autotune_workload("update", "B", scale=TEST_SCALE)
    assert report.status == OPTIMIZED
    assert report.fences_removed == 1
    assert report.crash_sweep["supported"] is True
    assert report.crash_sweep["consistent"] is True


def test_conservative_build_yields_bigger_wins():
    base = autotune_workload("update", "B", scale=TEST_SCALE)
    cons = autotune_workload("update", "B", scale=TEST_SCALE,
                             conservative=True)
    assert cons.mode == "dsb+cons"
    assert cons.status == OPTIMIZED
    assert cons.fences_removed > base.fences_removed
    assert cons.digest_match is True
    # The overfenced emission collapses back to (at most) the shipped
    # footprint, and the variant is strictly faster in simulation.
    assert (cons.speedup or 0.0) > 1.0


def test_edk_fold_narrows_key_set_under_ede():
    report = autotune_workload("update", "IQ", scale=TEST_SCALE)
    assert report.status == OPTIMIZED
    assert report.keys_after < report.keys_before
    assert report.key_map
    assert all(v != 0 for v in report.key_map.values())
    assert report.digest_match is True


def test_branchy_workload_is_skipped_not_mangled():
    report = autotune_workload("hazard", "IQ", scale=TEST_SCALE)
    assert report.status == SKIPPED
    assert "branches" in report.reason
    assert report.fences_removed == 0
    assert report.program_after == report.program_before


def test_publication_dmbs_removed_via_derived_obligations():
    """The publication kernel declares no framework obligations; the
    derived init->publish pairs alone license removing its DMBs."""
    report = autotune_workload("publication", "IQ", scale=TEST_SCALE,
                               conservative=True)
    assert report.status == OPTIMIZED
    assert report.fences_removed > 0
    assert report.digest_match is True


def test_budget_caps_trials():
    report = autotune_workload("update", "B", scale=TEST_SCALE, budget=2)
    assert report.budget == 2
    assert report.budget_used <= 2
    assert not report.exhaustive


def test_validate_off_skips_simulation():
    report = autotune_workload("update", "B", scale=TEST_SCALE,
                               validate=False)
    assert report.validated is False
    assert report.baseline is None and report.optimized is None
    assert report.digest_match is None
    # The static result is still emitted.
    assert report.status in (OPTIMIZED, PROVEN_MINIMAL)


def test_report_dict_is_json_shaped():
    import json

    report = autotune_workload("update", "WB", scale=TEST_SCALE)
    data = json.loads(json.dumps(report.to_dict()))
    assert data["workload"] == "update"
    assert data["status"] == report.status
    assert data["ordering"]["removed"] == report.fences_removed
    assert data["validation"]["digest_match"] is True
    assert data["search"]["trials"]


def test_to_findings_projection():
    report = autotune_workload("update", "B", scale=TEST_SCALE)
    findings = to_findings(report)
    removed = [f for f in findings if f.check == "autotune-removed"]
    assert len(removed) == len(report.removed_sites)
    assert all(f.severity == INFO for f in removed)

    skipped = to_findings(autotune_workload("hazard", "B", scale=TEST_SCALE))
    assert [f.check for f in skipped] == ["autotune-skipped"]


# --- rewriter safety rails ----------------------------------------------------


class TestRewriterRails:
    def test_ordering_sites_exclude_tagged_instructions(self):
        import dataclasses

        tagged_fence = dataclasses.replace(ops.dmb_st(), comment="commit:0")
        trace = [ops.dsb_sy(), ops.store(2, 1, comment="data:0"),
                 tagged_fence, ops.halt()]
        assert codegen.ordering_sites(trace) == [0]

    def test_drop_refuses_tagged_ordering_site(self):
        import dataclasses

        tagged_fence = dataclasses.replace(ops.dsb_sy(), comment="commit:0")
        trace = [tagged_fence, ops.halt()]
        with pytest.raises(codegen.RewriteError, match="persist tag"):
            codegen.apply_edits(trace, drop=[0])

    def test_drop_refuses_non_ordering_site(self):
        trace = [ops.store(2, 1), ops.dsb_sy(), ops.halt()]
        with pytest.raises(codegen.RewriteError, match="not a droppable"):
            codegen.apply_edits(trace, drop=[0])

    def test_drop_refuses_out_of_range(self):
        with pytest.raises(codegen.RewriteError, match="out of range"):
            codegen.apply_edits([ops.halt()], drop=[5])

    def test_drop_refuses_branchy_programs(self):
        built = build("hazard", "ede", TEST_SCALE)
        sites = codegen.ordering_sites(built.trace)
        if not sites:
            pytest.skip("hazard build emitted no bare ordering sites")
        with pytest.raises(codegen.RewriteError, match="branches"):
            codegen.apply_edits(built.trace, drop=[sites[0]])

    def test_zero_key_cannot_be_remapped(self):
        trace = [ops.dc_cvap_ede(2, edk_def=1, edk_use=0), ops.halt()]
        with pytest.raises(codegen.RewriteError, match="zero key"):
            codegen.apply_edits(trace, key_map={0: 3})
        with pytest.raises(codegen.RewriteError, match="zero key"):
            codegen.apply_edits(trace, key_map={1: 0})

    def test_edits_return_fresh_list(self):
        trace = [ops.dsb_sy(), ops.dc_cvap_ede(2, edk_def=1, edk_use=0),
                 ops.halt()]
        out = codegen.apply_edits(trace, drop=[0], key_map={1: 2})
        assert len(trace) == 3  # input untouched
        assert trace[1].edk_def == 1
        assert len(out) == 2
        assert out[0].edk_def == 2

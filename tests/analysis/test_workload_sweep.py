"""Every shipped workload x fence mode must analyze without errors.

This is the analyzer's regression net: the static checks model exactly
what the pipeline enforces at retirement, so a correct code generator
can never produce an error-severity finding.  The recorded info/warning
counts pin the analyzer's sensitivity — a change to either the checks or
the codegen that shifts them is worth a deliberate look.
"""

import pytest

from repro.analysis.report import analyze_workload
from repro.nvmfw.codegen import ALL_MODES, MODE_DSB, MODE_EDE
from repro.workloads import base as workloads_base

WORKLOADS = workloads_base.workload_names()

SWEEP = [(name, mode) for name in WORKLOADS for mode in ALL_MODES]

#: Recorded (errors, warnings, infos) at TEST_SCALE for the two workloads
#: the paper's microbenchmarks center on.  dsb proves everything through
#: fences (silent); dmb_st/none leave every obligation statically violated
#: (reported as info because those modes are unsafe by specification); ede
#: proves everything through dependence chains and commit waits (silent).
RECORDED_COUNTS = {
    ("update", "dsb"): (0, 0, 0),
    ("update", "dmb_st"): (0, 0, 45),
    ("update", "ede"): (0, 0, 0),
    ("update", "none"): (0, 0, 45),
    ("swap", "dsb"): (0, 0, 0),
    ("swap", "dmb_st"): (0, 0, 90),
    ("swap", "ede"): (0, 0, 0),
    ("swap", "none"): (0, 0, 90),
}

#: Checks allowed to warn on correct generated code.  edm-pressure fires
#: when a tree transaction's write set genuinely fills the EDM on a path;
#: producer-overwrite fires where the round-robin key allocator wraps (the
#: write buffer still drains those persists at the commit wait, so the
#: re-secured ones are downgraded to info, and the rest stay warnings).
BENIGN_WARNING_CHECKS = {"edm-pressure", "producer-overwrite"}


@pytest.mark.parametrize("name,mode", SWEEP, ids=["%s-%s" % nm for nm in SWEEP])
def test_workload_analyzes_without_errors(name, mode):
    report = analyze_workload(name, mode)
    assert not report.errors, "\n".join(str(f) for f in report.errors)
    bad = [
        f
        for f in report.findings
        if f.severity == "warning" and f.check not in BENIGN_WARNING_CHECKS
    ]
    assert not bad, "\n".join(str(f) for f in bad)

    counts = report.counts
    triple = (counts["error"], counts["warning"], counts["info"])
    expected = RECORDED_COUNTS.get((name, mode))
    if expected is not None:
        assert triple == expected, "%s/%s: %s != %s" % (name, mode, triple, expected)

    if mode == MODE_DSB:
        # Fences order everything: nothing to report, every obligation met.
        assert not report.findings
        assert report.verdict_counts.get("violated", 0) == 0
        assert report.verdict_counts.get("indeterminate", 0) == 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_ede_obligations_all_proved(name):
    # Under the EDE mode, every persist obligation the framework emits is
    # statically guaranteed: log->store through the consumes-chain and
    # persist->commit through the WAIT_ALL_KEYS at the commit point.
    report = analyze_workload(name, MODE_EDE)
    counts = report.verdict_counts
    assert counts.get("violated", 0) == 0
    assert counts.get("indeterminate", 0) == 0


def test_tree_warnings_are_all_edm_pressure():
    report = analyze_workload("btree", MODE_EDE)
    warned = {f.check for f in report.findings if f.severity == "warning"}
    assert warned <= {"edm-pressure"}

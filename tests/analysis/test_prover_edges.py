"""Edge cases of the static persist prover and the fence linter.

The autotuner leans on two properties these tests pin down:

* ``INDETERMINATE`` is a real third verdict — missing tags, degenerate
  same-site obligations, and partially-secured consumer chains must not
  collapse into ``GUARANTEED`` or ``VIOLATED`` (the oracle treats a
  GUARANTEED->INDETERMINATE transition as a regression, so these paths
  are load-bearing for search safety).
* The fence linter's ``eliminable_fraction`` is conservative at its
  boundaries: empty programs, programs whose every fence is required,
  and back-to-back fence chains (where each fence empties the other's
  window) all report zero.
"""

from repro.analysis.fences import lint_fences
from repro.analysis.persist import (
    GUARANTEED,
    INDETERMINATE,
    VIOLATED,
    PersistProver,
    derive_obligations,
    summarize,
)
from repro.consistency.obligations import LOG_BEFORE_STORE, Obligation
from repro.isa import instructions as ops


def _log_store_obligation():
    return Obligation(kind=LOG_BEFORE_STORE, first_tag="log:0",
                      second_tag="store:0", op_id=0, txn_id=-1)


# --- indeterminate verdicts ---------------------------------------------------


class TestIndeterminate:
    def test_missing_tag_is_indeterminate(self):
        trace = [ops.dc_cvap(2, comment="log:0"), ops.halt()]
        verdict = PersistProver(trace).prove(_log_store_obligation())
        assert verdict.verdict == INDETERMINATE
        assert "store:0" in verdict.reason
        assert verdict.second_index is None

    def test_both_tags_missing_names_the_first(self):
        trace = [ops.halt()]
        verdict = PersistProver(trace).prove(_log_store_obligation())
        assert verdict.verdict == INDETERMINATE
        assert "log:0" in verdict.reason

    def test_same_site_tags_are_indeterminate(self):
        obligation = Obligation(kind=LOG_BEFORE_STORE, first_tag="log:0",
                                second_tag="log:0", op_id=0, txn_id=-1)
        trace = [ops.dc_cvap(2, comment="log:0"), ops.halt()]
        verdict = PersistProver(trace).prove(obligation)
        assert verdict.verdict == INDETERMINATE
        assert "same instruction" in verdict.reason

    def test_partially_secured_consumer_chain_is_indeterminate(self):
        """The producer has a consumer, but no mechanism secures every
        path to the second instruction: the dynamic checker stays the
        authority — neither GUARANTEED nor VIOLATED."""
        trace = [
            ops.dc_cvap_ede(2, edk_def=1, edk_use=0, comment="log:0"),
            ops.dc_cvap_ede(3, edk_def=2, edk_use=1),  # consumes key 1
            ops.store(4, 1, comment="store:0"),        # but s does not
            ops.halt(),
        ]
        verdict = PersistProver(trace).prove(_log_store_obligation())
        assert verdict.verdict == INDETERMINATE
        assert "consumer chains" in verdict.reason

    def test_unconsumed_producer_on_open_path_is_violated(self):
        """Drop the consumer from the chain above: plain VIOLATED."""
        trace = [
            ops.dc_cvap_ede(2, edk_def=1, edk_use=0, comment="log:0"),
            ops.store(4, 1, comment="store:0"),
            ops.halt(),
        ]
        verdict = PersistProver(trace).prove(_log_store_obligation())
        assert verdict.verdict == VIOLATED

    def test_ede_edge_to_second_instruction_is_guaranteed(self):
        trace = [
            ops.dc_cvap_ede(2, edk_def=1, edk_use=0, comment="log:0"),
            ops.store_ede(4, 1, edk_def=0, edk_use=1, comment="store:0"),
            ops.halt(),
        ]
        verdict = PersistProver(trace).prove(_log_store_obligation())
        assert verdict.verdict == GUARANTEED

    def test_summarize_counts_every_bucket(self):
        trace = [ops.dc_cvap(2, comment="log:0"), ops.halt()]
        prover = PersistProver(trace)
        verdicts = prover.prove_all([_log_store_obligation()] * 3)
        assert summarize(verdicts) == {
            GUARANTEED: 0, VIOLATED: 0, INDETERMINATE: 3,
        }


# --- fence linter boundaries --------------------------------------------------


class TestEliminableFraction:
    def test_empty_program_reports_zero(self):
        findings, report = lint_fences([])
        assert findings == []
        assert report.total_full_fences == 0
        assert report.eliminable_fraction == 0.0

    def test_fenceless_program_reports_zero(self):
        _findings, report = lint_fences([ops.store(2, 1), ops.halt()])
        assert report.total_full_fences == 0
        assert report.eliminable_fraction == 0.0

    def test_required_fence_is_kept(self):
        """Two unrelated stores around a fence: nothing else orders the
        pair, so the fence is required and the fraction is zero."""
        trace = [ops.store(2, 1), ops.dsb_sy(), ops.store(3, 1), ops.halt()]
        _findings, report = lint_fences(trace)
        assert report.total_full_fences == 1
        assert report.redundant_sites == []
        assert report.eliminable_fraction == 0.0

    def test_fence_shadow_chain_is_skipped_conservatively(self):
        """Back-to-back fences shadow each other: the first sees an
        empty after-window, the second an empty before-window, and
        neither is flagged — even though one of the pair is plainly
        removable.  Conservative in the safe direction."""
        trace = [ops.store(2, 1), ops.dsb_sy(), ops.dsb_sy(),
                 ops.store(3, 1), ops.halt()]
        _findings, report = lint_fences(trace)
        assert report.total_full_fences == 2
        assert report.redundant_sites == []
        assert report.eliminable_fraction == 0.0

    def test_ede_covered_fence_is_flagged(self):
        """The store after the fence consumes the producer's key, so the
        fence orders nothing that EDE does not already order."""
        trace = [
            ops.dc_cvap_ede(2, edk_def=1, edk_use=0),
            ops.dsb_sy(),
            ops.store_ede(3, 1, edk_def=0, edk_use=1),
            ops.halt(),
        ]
        findings, report = lint_fences(trace)
        assert report.redundant_sites == [1]
        assert report.eliminable_fraction == 1.0
        assert [f.check for f in findings] == ["redundant-fence"]

    def test_boundary_fences_have_empty_windows(self):
        """A leading or trailing fence orders nothing inside the
        sequence and is left alone, whatever its external effect."""
        trace = [ops.dsb_sy(), ops.store(2, 1), ops.dsb_sy(), ops.halt()]
        _findings, report = lint_fences(trace)
        assert report.total_full_fences == 2
        assert report.redundant_sites == []

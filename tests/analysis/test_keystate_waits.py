"""Write-buffer wait semantics in the key-state analysis.

The pipeline enforces waits at retirement against the *write buffer*:
WAIT_ALL_KEYS drains every older EDE instruction still buffered, and
WAIT_KEY(k) drains every older EDE instruction touching k — not just the
producers currently registered in the EDM.  Round-robin key reuse (the
allocator wraps at 15 keys) therefore drops the EDM edge but stays
dynamically ordered at the next wait.  The analysis mirrors this: an
overwritten-while-pending producer becomes an "orphan" that a later wait
drains, downgrading the overwrite to info and suppressing dead-key.
"""

from repro.analysis import INFO, WARNING, KeyStateOptions, analyze_key_states
from repro.isa import instructions as ops


def _reuse_then(*tail):
    # Key 1 produced, redefined while pending (EDM edge dropped), then tail.
    return [
        ops.dc_cvap_ede(2, edk_def=1, edk_use=0),
        ops.dc_cvap_ede(3, edk_def=1, edk_use=0),
        *tail,
        ops.halt(),
    ]


def _by_check(findings, check):
    return [f for f in findings if f.check == check]


def test_wait_all_keys_downgrades_overwrite_and_drains_orphan():
    findings = analyze_key_states(
        _reuse_then(ops.wait_all_keys(), ops.store(4, 1))
    )
    (overwrite,) = _by_check(findings, "producer-overwrite")
    assert overwrite.severity == INFO
    assert "write buffer" in overwrite.message
    # The wait drains the orphaned first producer AND consumes the live
    # redefinition: nothing is dead.
    assert not _by_check(findings, "dead-key")


def test_wait_key_drains_matching_orphan_only():
    findings = analyze_key_states(
        _reuse_then(ops.wait_key(1), ops.store(4, 1))
    )
    (overwrite,) = _by_check(findings, "producer-overwrite")
    assert overwrite.severity == INFO


def test_no_wait_keeps_overwrite_a_warning():
    findings = analyze_key_states(_reuse_then(ops.store(4, 1)))
    (overwrite,) = _by_check(findings, "producer-overwrite")
    assert overwrite.severity == WARNING
    # Both the orphan and the live redefinition die unconsumed.
    assert len(_by_check(findings, "dead-key")) == 2


def test_compat_mode_matches_legacy_linear_verifier():
    findings = analyze_key_states(
        _reuse_then(ops.wait_all_keys(), ops.store(4, 1)),
        options=KeyStateOptions(wb_wait_semantics=False),
    )
    (overwrite,) = _by_check(findings, "producer-overwrite")
    assert overwrite.severity == WARNING

"""Tests for the crash-consistency checker against synthetic logs."""

import pytest

from repro.consistency.checker import check_run
from repro.consistency.obligations import (
    LOG_BEFORE_STORE,
    PERSIST_BEFORE_COMMIT,
    Obligation,
)
from repro.memory.persist_domain import KIND_CVAP, PersistLog


def log_before_store(op=0):
    return Obligation(LOG_BEFORE_STORE, "log:%d" % op, "store:%d" % op, op, 0)


def persist_before_commit(tag, txn=0):
    return Obligation(PERSIST_BEFORE_COMMIT, tag, "commit:%d" % txn, -1, txn)


class TestLogBeforeStore:
    def test_satisfied(self):
        log = PersistLog()
        log.record(cycle=100, line_addr=0x40, kind=KIND_CVAP, tag="log:0")
        visibility = [(150, 1, "store:0", 0x80)]
        result = check_run([log_before_store()], log, visibility)
        assert result.violations == []
        assert result.observed_safe

    def test_violated(self):
        log = PersistLog()
        log.record(cycle=200, line_addr=0x40, kind=KIND_CVAP, tag="log:0")
        visibility = [(150, 1, "store:0", 0x80)]  # visible before persist
        result = check_run([log_before_store()], log, visibility)
        assert len(result.violations) == 1
        assert not result.observed_safe

    def test_equal_cycle_is_allowed(self):
        log = PersistLog()
        log.record(cycle=150, line_addr=0x40, kind=KIND_CVAP, tag="log:0")
        visibility = [(150, 1, "store:0", 0x80)]
        result = check_run([log_before_store()], log, visibility)
        assert result.violations == []

    def test_missing_events_are_unresolved(self):
        result = check_run([log_before_store()], PersistLog(), [])
        assert len(result.unresolved) == 1
        assert not result.observed_safe

    def test_first_visibility_wins(self):
        log = PersistLog()
        log.record(cycle=100, line_addr=0x40, kind=KIND_CVAP, tag="log:0")
        visibility = [(90, 1, "store:0", 0x80), (200, 2, "store:0", 0x80)]
        result = check_run([log_before_store()], log, visibility)
        assert len(result.violations) == 1


class TestPersistBeforeCommit:
    def test_satisfied(self):
        log = PersistLog()
        log.record(100, 0x40, KIND_CVAP, tag="data:0")
        log.record(200, 0x80, KIND_CVAP, tag="commit:0")
        result = check_run([persist_before_commit("data:0")], log, [])
        assert result.violations == []

    def test_violated(self):
        log = PersistLog()
        log.record(100, 0x80, KIND_CVAP, tag="commit:0")
        log.record(200, 0x40, KIND_CVAP, tag="data:0")
        result = check_run([persist_before_commit("data:0")], log, [])
        assert len(result.violations) == 1

    def test_order_by_sequence_not_cycle(self):
        """Persist order is acceptance order (sequence), even if the cycle
        stamps tie."""
        log = PersistLog()
        log.record(100, 0x40, KIND_CVAP, tag="data:0")
        log.record(100, 0x80, KIND_CVAP, tag="commit:0")
        result = check_run([persist_before_commit("data:0")], log, [])
        assert result.violations == []


class TestVerdicts:
    def test_safe_by_spec_clean(self):
        result = check_run([], PersistLog(), [], safe_by_spec=True)
        assert result.verdict == "safe"

    def test_unsafe_by_spec_without_observation(self):
        result = check_run([], PersistLog(), [], safe_by_spec=False)
        assert "specification" in result.verdict

    def test_observed_violation_dominates(self):
        log = PersistLog()
        log.record(200, 0x40, KIND_CVAP, tag="log:0")
        result = check_run([log_before_store()], log,
                           [(150, 1, "store:0", 0x80)], safe_by_spec=False)
        assert result.verdict.startswith("UNSAFE")

    def test_unknown_obligation_kind_rejected(self):
        bad = Obligation("bogus", "a", "b", 0, 0)
        with pytest.raises(ValueError):
            check_run([bad], PersistLog(), [])

    def test_summary_mentions_count(self):
        result = check_run([], PersistLog(), [])
        assert "0 obligations" in result.summary()

"""Crash-consistency sweep: every (workload, safe-config) cell recovers.

Satellite of the resilience work: Table III claims the spec-safe
configurations (B, IQ, WB) are crash consistent; this sweep runs every
application under every safe configuration at a reduced scale and
validates recovery at *every* crash point of each persist log — zero
checker violations, consistent recovery everywhere.
"""

import pytest

from repro.consistency.crash_sim import CrashInjector
from repro.harness import configuration
from repro.harness.experiments import APPLICATIONS
from repro.harness.parallel import run_matrix_parallel
from repro.workloads import Scale

#: Reduced scale: big enough for multi-transaction logs, small enough to
#: sweep every crash point of every cell.
SWEEP_SCALE = Scale(ops_per_txn=5, txns=2)

SAFE_CONFIGS = ("B", "IQ", "WB")


@pytest.fixture(scope="module")
def safe_matrix():
    return run_matrix_parallel(
        list(APPLICATIONS), [configuration(name) for name in SAFE_CONFIGS],
        SWEEP_SCALE, max_workers=2, cache=False)


@pytest.mark.parametrize("app", APPLICATIONS)
@pytest.mark.parametrize("config", SAFE_CONFIGS)
class TestEveryCellRecovers:
    def test_zero_checker_violations(self, safe_matrix, app, config):
        result = safe_matrix[app][config]
        assert result.consistency.verdict == "safe", (app, config)
        assert result.consistency.violations == [], (app, config)

    def test_consistent_recovery_at_every_crash_point(self, safe_matrix,
                                                      app, config):
        result = safe_matrix[app][config]
        injector = CrashInjector(result.built, result.persist_log)
        if not injector.supports_recovery_validation:
            # Tree workloads record no per-transaction state snapshots, so
            # only the ordering checker (test above) applies to them — and
            # the injector must say so loudly, not pass vacuously.
            with pytest.raises(ValueError, match="committed states"):
                injector.validate_many(stride=1)
            return
        reports = injector.validate_many(stride=1)
        assert reports, (app, config)
        bad = [r.crash_point for r in reports if not r.consistent]
        assert bad == [], (app, config)
        # The final crash point reflects the fully committed run.
        assert reports[-1].committed_txns == SWEEP_SCALE.txns, (app, config)

"""Tests for crash injection and undo recovery."""

import pytest

from repro.consistency.crash_sim import CrashInjector
from repro.harness import configuration, run_one
from repro.workloads import Scale

SMALL = Scale(ops_per_txn=4, txns=3)


def run_with_injector(workload="update", config="B", scale=SMALL):
    result = run_one(workload, configuration(config), scale)
    return result, CrashInjector(result.built, result.persist_log)


class TestImageReconstruction:
    def test_empty_prefix_is_baseline(self):
        result, injector = run_with_injector()
        image = injector.image_at(0)
        assert image == result.built.baseline_memory

    def test_full_prefix_reflects_all_commits(self):
        result, injector = run_with_injector()
        image = injector.image_at(len(result.persist_log))
        layout = result.built.layout
        assert image[layout.commit_record_addr] == SMALL.txns

    def test_prefix_monotone_commit_count(self):
        result, injector = run_with_injector()
        layout = result.built.layout
        last = 0
        for point in range(len(result.persist_log) + 1):
            committed = injector.image_at(point).get(
                layout.commit_record_addr, 0)
            assert committed >= last
            last = committed
        assert last == SMALL.txns


class TestRecovery:
    def test_recovery_restores_in_flight_updates(self):
        """Crash right after the first data persist of txn 0: recovery must
        restore the original value."""
        result, injector = run_with_injector()
        log = result.persist_log
        first_data = next(r for r in log if r.tag and r.tag.startswith("data:"))
        image = injector.image_at(first_data.seq + 1)
        recovered = injector.recover(image)
        report = injector.validate(first_data.seq + 1)
        assert report.consistent
        assert report.committed_txns == 0
        # Recovered value equals the baseline for every tracked address.
        for addr, value in injector.expected_state(0).items():
            assert recovered.get(addr, 0) == value

    def test_recovery_preserves_committed_updates(self):
        result, injector = run_with_injector()
        log = result.persist_log
        first_commit = log.first_with_tag("commit:0")
        report = injector.validate(first_commit.seq + 1)
        assert report.consistent
        assert report.committed_txns == 1

    def test_stale_entries_skipped_by_epoch(self):
        """Crash during txn 1: txn 0's stale slots (epoch 0) must not be
        undone onto txn 0's committed data."""
        result, injector = run_with_injector(
            scale=Scale(ops_per_txn=4, txns=2))
        log = result.persist_log
        # Find a persist inside txn 1 (after commit:0).
        commit0 = log.first_with_tag("commit:0")
        later = [r for r in log if r.seq > commit0.seq
                 and r.tag and r.tag.startswith("data:")]
        assert later
        report = injector.validate(later[0].seq + 1)
        assert report.consistent
        assert report.committed_txns == 1


class TestValidateMany:
    @pytest.mark.parametrize("config", ["B", "SU", "IQ", "WB"])
    def test_safe_configs_recover_everywhere(self, config):
        _result, injector = run_with_injector(config=config)
        reports = injector.validate_many(stride=2)
        assert all(r.consistent for r in reports)

    @pytest.mark.parametrize("workload", ["update", "swap"])
    def test_unsafe_config_fails_somewhere(self, workload):
        _result, injector = run_with_injector(workload=workload, config="U")
        reports = injector.validate_many(stride=1)
        assert any(not r.consistent for r in reports)

    def test_explicit_crash_points(self):
        _result, injector = run_with_injector()
        reports = injector.validate_many(crash_points=[0, 1, 2])
        assert [r.crash_point for r in reports] == [0, 1, 2]

"""Tests for the Section IX-A compiler support: IR, key allocation,
lowering and the soundness of spilling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    IrError,
    IrFunction,
    IrOp,
    allocate_keys,
    lower,
    verify_lowering,
)
from repro.isa import instructions as ops
from repro.isa.opcodes import Opcode

NVM = 2 << 30


def cvap(index, defines=None, uses=()):
    return IrOp(ops.dc_cvap(0, addr=NVM + 64 * index),
                defines=defines, uses=tuple(uses))


def store(index, defines=None, uses=()):
    return IrOp(ops.store(1, 2, addr=NVM + (1 << 20) + 64 * index),
                defines=defines, uses=tuple(uses))


def load(index, uses=()):
    return IrOp(ops.ldr(3, 2, addr=NVM + (2 << 20) + 64 * index),
                uses=tuple(uses))


class TestIrValidation:
    def test_use_before_def_rejected(self):
        with pytest.raises(IrError):
            IrFunction([store(0, uses=(7,))])

    def test_ssa_redefinition_rejected(self):
        with pytest.raises(IrError):
            IrFunction([cvap(0, defines=1), cvap(1, defines=1)])

    def test_three_uses_rejected(self):
        with pytest.raises(IrError):
            IrOp(ops.store(1, 2, addr=NVM), uses=(1, 2, 3))

    def test_non_memory_op_cannot_carry_tokens(self):
        with pytest.raises(IrError):
            IrOp(ops.add(1, 2, imm=3), defines=0)

    def test_pre_keyed_instructions_rejected(self):
        with pytest.raises(IrError):
            IrOp(ops.dc_cvap_ede(0, edk_def=1, edk_use=0, addr=NVM))

    def test_live_ranges(self):
        fn = IrFunction([cvap(0, defines=0), store(0), store(1, uses=(0,))])
        assert fn.live_ranges()[0] == (0, 2)

    def test_dependence_pairs(self):
        fn = IrFunction([cvap(0, defines=0), store(0, uses=(0,)),
                         store(1, uses=(0,))])
        assert fn.dependence_pairs() == [(0, 1), (0, 2)]


class TestAllocation:
    def test_disjoint_ranges_share_keys(self):
        fn = IrFunction([
            cvap(0, defines=0), store(0, uses=(0,)),
            cvap(1, defines=1), store(1, uses=(1,)),
        ])
        assignment = allocate_keys(fn, num_keys=1)
        assert assignment.spill_waits == 0
        assert assignment.token_key[0] == assignment.token_key[1] == 1

    def test_overlapping_ranges_get_distinct_keys(self):
        fn = IrFunction([
            cvap(0, defines=0), cvap(1, defines=1),
            store(0, uses=(0,)), store(1, uses=(1,)),
        ])
        assignment = allocate_keys(fn)
        assert assignment.token_key[0] != assignment.token_key[1]

    def test_no_overlapping_live_tokens_share_a_key(self):
        fn = IrFunction(
            [cvap(t, defines=t) for t in range(10)]
            + [store(t, uses=(t,)) for t in range(10)])
        assignment = allocate_keys(fn)
        ranges = fn.live_ranges()
        for a in range(10):
            for b in range(a + 1, 10):
                sa, ea = ranges[a]
                sb, eb = ranges[b]
                if sa <= eb and sb <= ea:  # overlap
                    assert (assignment.token_key[a]
                            != assignment.token_key[b])

    def test_spill_inserts_wait_key(self):
        fn = IrFunction(
            [cvap(t, defines=t) for t in range(4)]
            + [store(t, uses=(t,)) for t in range(4)])
        assignment = allocate_keys(fn, num_keys=2)
        assert assignment.spill_waits > 0
        waits = [op for op in assignment.ops
                 if op.inst.opcode is Opcode.WAIT_KEY]
        assert len(waits) == assignment.spill_waits

    def test_load_consumers_force_fence_spill(self):
        fn = IrFunction(
            [store(t, defines=t) for t in range(3)]
            + [load(t, uses=(t,)) for t in range(3)])
        assignment = allocate_keys(fn, num_keys=1)
        assert assignment.spill_fences > 0
        assert any(op.inst.opcode is Opcode.DMB_SY for op in assignment.ops)

    def test_invalid_key_count(self):
        fn = IrFunction([cvap(0, defines=0)])
        with pytest.raises(ValueError):
            allocate_keys(fn, num_keys=0)
        with pytest.raises(ValueError):
            allocate_keys(fn, num_keys=16)


class TestLowering:
    def test_single_dependence_uses_variants(self):
        fn = IrFunction([cvap(0, defines=0), store(0, uses=(0,))])
        lowered = lower(fn)
        assert lowered.instructions[0].opcode is Opcode.DC_CVAP_EDE
        assert lowered.instructions[1].opcode is Opcode.STR_EDE
        assert (lowered.instructions[1].edk_use
                == lowered.instructions[0].edk_def)
        assert verify_lowering(fn, lowered) == []

    def test_two_uses_emit_join(self):
        fn = IrFunction([
            cvap(0, defines=0), cvap(1, defines=1),
            store(0, uses=(0, 1)),
        ])
        lowered = lower(fn)
        joins = [i for i in lowered.instructions if i.opcode is Opcode.JOIN]
        assert len(joins) == 1
        assert verify_lowering(fn, lowered) == []

    def test_independent_ops_carry_no_keys(self):
        fn = IrFunction([cvap(0), store(0), load(0)])
        lowered = lower(fn)
        assert all(not i.is_ede for i in lowered.instructions)

    def test_spilled_lowering_verifies(self):
        fn = IrFunction(
            [cvap(t, defines=t) for t in range(8)]
            + [store(t, uses=(t,)) for t in range(8)])
        lowered = lower(fn, num_keys=2)
        assert verify_lowering(fn, lowered) == []

    def test_fence_spilled_lowering_verifies(self):
        fn = IrFunction(
            [store(t, defines=t) for t in range(4)]
            + [load(t, uses=(t,)) for t in range(4)])
        lowered = lower(fn, num_keys=1)
        assert verify_lowering(fn, lowered) == []


@st.composite
def random_ir(draw):
    """Random SSA IR with mixed producer/consumer kinds."""
    length = draw(st.integers(min_value=1, max_value=30))
    ops_list = []
    defined = []
    next_token = 0
    for index in range(length):
        kind = draw(st.sampled_from(
            ["producer", "consumer", "both", "join", "load", "plain"]))
        uses = ()
        defines = None
        if kind in ("consumer", "both", "load", "join") and defined:
            first = draw(st.sampled_from(defined))
            if kind == "join" and len(defined) > 1:
                second = draw(st.sampled_from(defined))
                uses = (first, second) if second != first else (first,)
            else:
                uses = (first,)
        if kind in ("producer", "both", "join"):
            defines = next_token
            defined.append(next_token)
            next_token += 1
        if kind == "load":
            ops_list.append(load(index, uses=uses))
        elif draw(st.booleans()):
            ops_list.append(cvap(index, defines=defines, uses=uses))
        else:
            ops_list.append(store(index, defines=defines, uses=uses))
    return IrFunction(ops_list)


class TestLoweringProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_ir(), st.integers(min_value=1, max_value=15))
    def test_every_dependence_survives_lowering(self, fn, num_keys):
        lowered = lower(fn, num_keys=num_keys)
        assert verify_lowering(fn, lowered) == []

    @settings(max_examples=40, deadline=None)
    @given(random_ir())
    def test_full_key_set_never_spills_small_functions(self, fn):
        if len(fn) > 15:
            return
        lowered = lower(fn, num_keys=15)
        assert lowered.assignment.spill_waits == 0
        assert lowered.assignment.spill_fences == 0

    @settings(max_examples=30, deadline=None)
    @given(random_ir(), st.integers(min_value=1, max_value=15))
    def test_lowered_code_passes_static_verifier(self, fn, num_keys):
        from repro.core import verifier
        lowered = lower(fn, num_keys=num_keys)
        findings = [f for f in verifier.verify(lowered.instructions)
                    if f.severity == verifier.ERROR]
        assert findings == []


class TestLoweredCodeOnPipeline:
    def test_ordering_enforced_end_to_end(self):
        """Lowered code run on the timing model honours the IR dependences."""
        from repro.core.policies import WB_POLICY
        from repro.isa.instructions import halt
        from repro.memory import CacheHierarchy, MemoryController
        from repro.pipeline import OutOfOrderCore

        fn = IrFunction([
            cvap(0, defines=0),
            store(0, uses=(0,)),
            cvap(1, defines=1),
            store(1, uses=(1,)),
        ])
        lowered = lower(fn, num_keys=2)
        trace = lowered.instructions + [halt()]
        controller = MemoryController()
        hierarchy = CacheHierarchy(controller)
        lines = {i.addr & ~63 for i in lowered.instructions if i.addr}
        for line in lines:
            for cache in (hierarchy.l3, hierarchy.l2, hierarchy.l1d):
                cache.insert(line)
        core = OutOfOrderCore(trace, hierarchy, WB_POLICY)
        # Store-class instructions complete when their write-buffer push
        # finishes, at cycle max(done, push_cycle) — observe that at the
        # memory boundary (the run loop binds these methods at entry, so
        # wrapping them before run() intercepts every push).
        completions = {}
        real_clean = hierarchy.clean_to_pop
        real_commit = hierarchy.store_commit

        def clean(addr, cycle, tag=None, inst_seq=None):
            done = real_clean(addr, cycle, tag=tag, inst_seq=inst_seq)
            completions[addr] = max(done, cycle)
            return done

        def commit(addr, cycle):
            done = real_commit(addr, cycle)
            completions[addr] = max(done, cycle)
            return done

        hierarchy.clean_to_pop = clean
        hierarchy.store_commit = commit
        core.run()
        cvap_addr = [inst.addr for inst in lowered.instructions
                     if inst.opcode in (Opcode.DC_CVAP, Opcode.DC_CVAP_EDE)]
        store_addr = [inst.addr for inst in lowered.instructions
                      if inst.opcode in (Opcode.STR, Opcode.STR_EDE)]
        assert completions[store_addr[0]] >= completions[cvap_addr[0]]
        assert completions[store_addr[1]] >= completions[cvap_addr[1]]

"""End-to-end integration tests: the paper's headline results in miniature.

These run the full stack — workload generation, per-configuration code
emission, OoO timing simulation, NVM model, consistency checking — and
assert the qualitative results of Section VII.
"""

import pytest

from repro.harness import CONFIGURATIONS, run_matrix
from repro.harness.experiments import (
    fig9_execution_time,
    fig11_issue_distribution,
    safety_matrix,
)
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=15, txns=6)
APPS = ["update", "swap", "btree", "ctree", "rbtree", "rtree"]


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(APPS, list(CONFIGURATIONS), SCALE)


class TestFigure9Shape:
    def test_per_app_configuration_order(self, matrix):
        """Section VII-A: IQ beats B and SU; WB beats IQ; U fastest —
        for every application."""
        for app in APPS:
            cycles = {name: matrix[app][name].cycles for name in matrix[app]}
            assert cycles["IQ"] < cycles["B"], app
            assert cycles["IQ"] <= cycles["SU"], app
            assert cycles["WB"] < cycles["IQ"], app
            assert cycles["U"] <= cycles["WB"], app

    def test_su_close_to_baseline(self, matrix):
        """SU gains little over B (paper: ~5%)."""
        result = fig9_execution_time(SCALE, APPS, results=matrix)
        assert result.geomean_normalized["SU"] > 0.90

    def test_meaningful_ede_speedups(self, matrix):
        """The headline: EDE delivers real speedups over fences."""
        result = fig9_execution_time(SCALE, APPS, results=matrix)
        geo = result.geomean_normalized
        assert geo["IQ"] < 0.95    # paper: 0.85
        assert geo["WB"] < geo["IQ"]
        assert geo["U"] < geo["WB"] + 0.10

    def test_instruction_counts_ede_smaller_than_fenced(self, matrix):
        """EDE replaces one fence per op with operand bits: fewer
        instructions than B."""
        for app in APPS:
            assert (matrix[app]["IQ"].instructions
                    < matrix[app]["B"].instructions)


class TestFigure11Shape:
    def test_ipc_ordering(self, matrix):
        result = fig11_issue_distribution(SCALE, APPS, results=matrix)
        ipc = result.mean_ipc
        assert ipc["B"] <= ipc["SU"] + 0.02
        assert ipc["B"] < ipc["WB"]
        assert ipc["WB"] <= ipc["U"] + 0.02

    def test_zero_issue_cycles_dominate(self, matrix):
        """Section VII-B: zero-issue cycles are the largest bucket; for the
        fence-bound configurations they are the outright majority."""
        result = fig11_issue_distribution(SCALE, APPS, results=matrix)
        for app in APPS:
            for name, series in result.distributions[app].items():
                assert series[0] == max(series), (app, name)
                if name in ("B", "SU"):
                    assert series[0] > 0.5, (app, name)


class TestSafetyClaims:
    def test_table3_verdicts(self, matrix):
        result = safety_matrix(SCALE, APPS, results=matrix)
        assert result.safe_configs_clean()
        for app in APPS:
            assert result.verdicts[app]["SU"].startswith("unsafe by spec")

    def test_unsafe_violations_observed_on_kernels(self, matrix):
        result = safety_matrix(SCALE, APPS, results=matrix)
        assert result.violation_counts["update"]["U"] > 0
        assert result.violation_counts["swap"]["U"] > 0


class TestCrossConfigConsistency:
    def test_all_configs_compute_same_final_state(self, matrix):
        """Fence discipline must not change results, only timing."""
        for app in APPS:
            reference = matrix[app]["B"].built.final_memory
            for name in ("SU", "IQ", "WB", "U"):
                final = matrix[app][name].built.final_memory
                # Heap and array contents identical; log slots may differ
                # only in epoch bits (same here since txn ids match).
                assert final == reference, (app, name)

    def test_persist_counts_similar(self, matrix):
        """Every config issues the same CVAPs (modulo none for commit
        waits); persisted-line counts must be within a small factor."""
        for app in APPS:
            base = len(matrix[app]["B"].persist_log)
            for name in ("IQ", "WB", "U"):
                other = len(matrix[app][name].persist_log)
                assert abs(other - base) <= 0.2 * base + 10

"""Integration: the paper's literal assembly listings run end to end."""

from repro.core.policies import FENCE_POLICY, IQ_POLICY, WB_POLICY
from repro.isa import Machine, assemble
from repro.memory import CacheHierarchy, MemoryController
from repro.pipeline import OutOfOrderCore

NVM = 2 << 30
ELEM = NVM + (8 << 20)
SLOT = NVM + (9 << 20)


def run_assembly(source, policy, warm=()):
    program = assemble(source)
    machine = Machine()
    trace = machine.run(program)
    controller = MemoryController()
    hierarchy = CacheHierarchy(controller)
    for line in warm:
        for cache in (hierarchy.l3, hierarchy.l2, hierarchy.l1d):
            cache.insert(line)
    core = OutOfOrderCore(trace, hierarchy, policy)
    stats = core.run()
    return machine, controller, stats


FIGURE4 = """
    mov x0, #%d
    mov x2, #%d
    ldr x1, [x0]        ; load original value
    stp x0, x1, [x2]    ; store addr & val
    dc cvap, x2         ; persist slot
    dsb sy              ; wait for slot to persist
    mov x3, #6          ; load new value
    str x3, [x0]        ; store new value
    dc cvap, x0         ; persist new value
    halt
""" % (ELEM, SLOT)

FIGURE7 = """
    mov x0, #%d
    mov x2, #%d
    ldr x1, [x0]
    stp x0, x1, [x2]
    dc cvap (1, 0), x2  ; dependence producer, EDK #1
    mov x3, #6
    str (0, 1), x3, [x0] ; dependence consumer, EDK #1
    dc cvap, x0
    halt
""" % (ELEM, SLOT)


class TestFigure4:
    def test_functional_result(self):
        machine, controller, _ = run_assembly(FIGURE4, FENCE_POLICY,
                                              warm=[ELEM, SLOT])
        assert machine.memory.load(ELEM) == 6
        assert machine.memory.load(SLOT) == ELEM
        assert machine.memory.load(SLOT + 8) == 0  # original value

    def test_persist_order(self):
        _, controller, _ = run_assembly(FIGURE4, FENCE_POLICY,
                                        warm=[ELEM, SLOT])
        lines = [r.line_addr for r in controller.persist_log]
        assert lines.index(SLOT & ~63) < lines.index(ELEM & ~63)


class TestFigure7:
    def test_same_functional_result_as_figure4(self):
        for policy in (IQ_POLICY, WB_POLICY):
            machine, _, _ = run_assembly(FIGURE7, policy, warm=[ELEM, SLOT])
            assert machine.memory.load(ELEM) == 6

    def test_persist_order_preserved_without_dsb(self):
        for policy in (IQ_POLICY, WB_POLICY):
            _, controller, _ = run_assembly(FIGURE7, policy,
                                            warm=[ELEM, SLOT])
            lines = [r.line_addr for r in controller.persist_log]
            assert lines.index(SLOT & ~63) < lines.index(ELEM & ~63)

    def test_ede_no_slower_than_fence(self):
        _, _, fence_stats = run_assembly(FIGURE4, FENCE_POLICY,
                                         warm=[ELEM, SLOT])
        _, _, ede_stats = run_assembly(FIGURE7, WB_POLICY,
                                       warm=[ELEM, SLOT])
        assert ede_stats.cycles <= fence_stats.cycles


class TestFigure12:
    def test_hazard_loop_runs(self):
        source = """
            mov x1, #%d
            mov x2, #%d
            mov x5, #%d
            str x5, [x1]        ; element location cell
        Loop: ldr x3, [x1]      ; load element's location
            str x3, [x2]        ; announce element's location
            dmb sy              ; full fence: wait for announcement
            ldr x4, [x1]        ; load element's location again
            cmp x4, x3          ; compare both locations
            b.ne Loop           ; try again if locations differ
            halt
        """ % (0x100000, 0x200000, 0x300000)
        machine, _, stats = run_assembly(
            source, FENCE_POLICY, warm=[0x100000, 0x200000])
        assert machine.memory.load(0x200000) == 0x300000
        assert stats.retired == 11  # no retry iterations

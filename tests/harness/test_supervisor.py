"""The supervisor: timeouts, retries, worker death, degradation."""

import multiprocessing
import os
import time

import pytest

from repro.harness.supervisor import (
    SupervisorConfig,
    SupervisorError,
    resolve_backoff,
    resolve_retries,
    resolve_timeout,
    run_supervised,
)

FAST = dict(timeout=None, retries=2, backoff=0.01)


def _claim(claim_dir, name):
    """Cross-process once-only marker (same trick as the chaos plan)."""
    try:
        fd = os.open(os.path.join(claim_dir, name),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


# Workers are module-level so they pickle into pool processes.

def _double(payload):
    return payload * 2


def _flaky(payload):
    """Fails the first `fails` attempts (across all processes), then works."""
    claim_dir, fails, value = payload
    for attempt in range(fails):
        if _claim(claim_dir, "flaky%d" % attempt):
            raise RuntimeError("transient failure %d" % attempt)
    return value


def _kill_n(payload):
    """Dies (os._exit) the first `kills` attempts; survives after that.

    In the main process (serial/degraded mode) it raises instead — the
    same demotion the chaos plan applies — so a test can never kill the
    pytest process itself.
    """
    claim_dir, kills, value = payload
    for attempt in range(kills):
        if _claim(claim_dir, "kill%d" % attempt):
            if multiprocessing.parent_process() is not None:
                os._exit(77)
            raise RuntimeError("worker death (demoted in main process)")
    return value


def _sleepy(payload):
    """Stalls well past any test timeout on its first attempt.

    The claim is keyed by the task's value: concurrently running tasks
    must not race for one shared claim (only the intended task stalls).
    """
    claim_dir, seconds, value = payload
    if _claim(claim_dir, "sleep%d" % value):
        time.sleep(seconds)
    return value


def config(max_workers=1, **overrides):
    merged = dict(FAST)
    merged.update(overrides)
    return SupervisorConfig.from_env(max_workers=max_workers, **merged)


class TestHappyPath:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_all_results_and_report(self, workers):
        tasks = [("t%d" % n, n) for n in range(4)]
        results, report = run_supervised(tasks, _double, config(workers))
        assert results == {"t%d" % n: 2 * n for n in range(4)}
        assert report.all_succeeded
        assert report.total_retries == 0
        assert not report.failed()
        assert all(len(g.attempts) == 1 for g in report.groups)

    def test_on_result_fires_per_completion(self):
        seen = []
        run_supervised([("a", 1), ("b", 2)], _double, config(1),
                       on_result=lambda tid, value: seen.append((tid, value)))
        assert sorted(seen) == [("a", 2), ("b", 4)]

    def test_single_task_avoids_the_pool(self):
        # One group: the pool would cost a fork for no parallelism.
        _, report = run_supervised([("only", 3)], _double, config(8))
        assert report.groups[0].attempts[0].where == "serial"


class TestRetries:
    def test_transient_failure_retried_serial(self, tmp_path):
        tasks = [("flaky", (str(tmp_path), 1, 42))]
        results, report = run_supervised(tasks, _flaky, config(1))
        assert results == {"flaky": 42}
        group = report.group("flaky")
        assert group.succeeded and group.retries == 1
        assert group.attempts[0].outcome == "error"
        assert "transient failure" in group.failure_causes[0]

    def test_transient_failure_retried_pool(self, tmp_path):
        tasks = [("flaky", (str(tmp_path), 2, 7)), ("ok", (str(tmp_path), 0, 1))]
        results, report = run_supervised(tasks, _flaky, config(2))
        assert results == {"flaky": 7, "ok": 1}
        assert report.group("flaky").retries == 2
        assert report.group("ok").retries == 0

    def test_budget_exhaustion_is_reported_not_raised(self):
        results, report = run_supervised([("bad", 1), ("good", 2)], _mixed,
                                         config(1, retries=1))
        assert results == {"good": 20}
        assert not report.all_succeeded
        bad = report.group("bad")
        assert not bad.succeeded
        assert bad.failures == 2  # initial attempt + 1 retry
        assert all("always fails" in cause for cause in bad.failure_causes)

    def test_resolvers_follow_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_RETRIES", "4")
        monkeypatch.setenv("REPRO_BACKOFF", "0.25")
        assert resolve_timeout() == 12.5
        assert resolve_retries() == 4
        assert resolve_backoff() == 0.25
        monkeypatch.setenv("REPRO_TIMEOUT", "0")
        assert resolve_timeout() is None  # 0 disables the timeout
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            resolve_retries()

    def test_backoff_is_exponential_and_capped(self):
        cfg = SupervisorConfig(backoff_s=1.0)
        assert cfg.backoff_delay(1) == 1.0
        assert cfg.backoff_delay(2) == 2.0
        assert cfg.backoff_delay(3) == 4.0
        assert cfg.backoff_delay(10) == 5.0  # BACKOFF_CAP_S
        assert SupervisorConfig(backoff_s=0).backoff_delay(3) == 0.0


def _mixed(payload):
    if payload == 1:
        raise RuntimeError("always fails: %r" % payload)
    return payload * 10


class TestWorkerDeath:
    def test_killed_worker_respawns_pool_and_converges(self, tmp_path):
        tasks = [("victim", (str(tmp_path), 1, 5)),
                 ("bystander", (str(tmp_path), 0, 6))]
        results, report = run_supervised(tasks, _kill_n, config(2))
        assert results == {"victim": 5, "bystander": 6}
        assert report.all_succeeded
        assert report.pool_respawns >= 1
        # Somebody observed the death; preemptions charge no retry budget.
        outcomes = [a.outcome for g in report.groups for a in g.attempts]
        assert "preempted" in outcomes
        assert all(g.failures == 0 for g in report.groups)

    def test_repeated_death_degrades_to_serial(self, tmp_path):
        # 4 kills vs a respawn budget of 1: the pool dies, dies again,
        # and the supervisor falls back to in-process execution, where
        # the remaining kill claims surface as plain (retryable) errors.
        tasks = [("a", (str(tmp_path), 4, 1)), ("b", (str(tmp_path), 0, 2))]
        results, report = run_supervised(
            tasks, _kill_n, config(2, retries=4, max_pool_respawns=1))
        assert results == {"a": 1, "b": 2}
        assert report.degraded_to_serial
        assert report.pool_respawns == 2  # budget + the final straw
        assert report.all_succeeded


class TestTimeouts:
    def test_stuck_worker_times_out_and_retries(self, tmp_path):
        tasks = [("slow", (str(tmp_path), 30.0, 9)),
                 ("quick", (str(tmp_path), 0.0, 8))]
        start = time.monotonic()
        results, report = run_supervised(
            tasks, _sleepy, config(2, timeout=0.5, retries=1))
        assert results == {"slow": 9, "quick": 8}
        # The stalled attempt was abandoned, not waited out.
        assert time.monotonic() - start < 20.0
        assert report.pool_respawns >= 1  # stranded worker forces a recycle
        slow = report.group("slow")
        assert "timeout" in [a.outcome for a in slow.attempts]
        assert any("wall-clock" in c for c in slow.failure_causes)

    def test_timeout_disabled_by_zero(self):
        cfg = SupervisorConfig.from_env(max_workers=2, timeout=0)
        assert cfg.timeout_s is None


class TestSupervisorError:
    def test_carries_report(self):
        report_obj = None
        try:
            raise SupervisorError("nope", report=_make_report())
        except SupervisorError as exc:
            report_obj = exc.report
        assert report_obj is not None and report_obj.groups == []


def _make_report():
    from repro.harness.supervisor import MatrixReport

    return MatrixReport()

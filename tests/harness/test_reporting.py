"""Tests for the markdown report generator."""

import pytest

from repro.harness import CONFIGURATIONS, run_matrix
from repro.harness.experiments import (
    fig9_execution_time,
    fig10_pending_writes,
    fig11_issue_distribution,
    safety_matrix,
)
from repro.harness.reporting import (
    fig9_markdown,
    fig10_markdown,
    fig11_markdown,
    full_report,
    safety_markdown,
    supervision_markdown,
)
from repro.harness.supervisor import Attempt, GroupReport, MatrixReport
from repro.workloads import Scale

SMALL = Scale(ops_per_txn=5, txns=2)
APPS = ["update"]


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(APPS, list(CONFIGURATIONS), SMALL)


class TestSections:
    def test_fig9_markdown(self, matrix):
        text = fig9_markdown(fig9_execution_time(SMALL, APPS, results=matrix))
        assert text.startswith("| app |")
        assert "update" in text
        assert "geomean (paper)" in text
        # Header + separator + app rows + 2 geomean rows.
        assert text.count("\n") == 1 + len(APPS) + 2

    def test_fig10_markdown(self, matrix):
        text = fig10_markdown(
            fig10_pending_writes(SMALL, APPS, results=matrix))
        assert "update" in text
        assert "| B |" in text or "B |" in text.splitlines()[0]

    def test_fig11_markdown(self, matrix):
        text = fig11_markdown(
            fig11_issue_distribution(SMALL, APPS, results=matrix))
        assert "measured IPC" in text
        assert "paper IPC" in text

    def test_safety_markdown(self, matrix):
        text = safety_markdown(safety_matrix(SMALL, APPS, results=matrix))
        assert "safe" in text
        assert "UNSAFE" in text  # the U column


def _supervision_report():
    clean = GroupReport(
        group="update/dsb",
        attempts=[Attempt(outcome="ok", where="pool", latency_s=0.1)],
        succeeded=True)
    flaky = GroupReport(
        group="swap/ede",
        attempts=[Attempt(outcome="timeout", where="pool", latency_s=2.0,
                          error="timed out after 2.0s"),
                  Attempt(outcome="ok", where="serial", latency_s=0.2)],
        succeeded=True)
    return MatrixReport(groups=[clean, flaky], pool_respawns=1,
                        wall_time_s=1.5, resumed_from_cache=2)


class TestSupervisionMarkdown:
    def test_summary_and_group_tables(self):
        text = supervision_markdown(_supervision_report())
        assert "| groups | retries |" in text
        assert "| 2 | 1 | 1 | 2 | 1.50s | parallel |" in text
        assert "| update/dsb | ok | 1 | 0 |" in text
        assert "| swap/ede | ok | 2 | 1 | timed out after 2.0s |" in text

    def test_failed_group_is_loud(self):
        report = _supervision_report()
        report.groups[1].succeeded = False
        assert "**FAILED**" in supervision_markdown(report)

    def test_degraded_mode_labelled(self):
        report = _supervision_report()
        report.degraded_to_serial = True
        assert "serial (degraded)" in supervision_markdown(report)


class TestFullReport:
    def test_structure(self, matrix):
        text = full_report(SMALL, results=matrix)
        assert text.startswith("# Measured results")
        for heading in ("## Figure 9", "## Figure 10", "## Figure 11",
                        "## Crash-consistency"):
            assert heading in text
        assert text.endswith("\n")

    def test_no_supervision_section_for_reused_results(self, matrix):
        """Precomputed results never ran through the supervisor here."""
        assert "## Supervised execution" not in full_report(
            SMALL, results=matrix)

    def test_supervision_section_after_supervised_run(self, matrix,
                                                      monkeypatch):
        """When run_matrix goes through the parallel engine, the
        supervisor's report lands in the regenerated markdown."""
        import repro.harness.parallel as parallel
        import repro.harness.reporting as reporting

        def fake_run_matrix(*args, **kwargs):
            monkeypatch.setattr(parallel, "_LAST_REPORT",
                                _supervision_report())
            return matrix

        monkeypatch.setattr(reporting, "run_matrix", fake_run_matrix)
        text = full_report(SMALL)
        assert "## Supervised execution" in text
        assert "| update/dsb | ok |" in text

"""Tests for the markdown report generator."""

import pytest

from repro.harness import CONFIGURATIONS, run_matrix
from repro.harness.experiments import (
    fig9_execution_time,
    fig10_pending_writes,
    fig11_issue_distribution,
    safety_matrix,
)
from repro.harness.reporting import (
    fig9_markdown,
    fig10_markdown,
    fig11_markdown,
    full_report,
    safety_markdown,
)
from repro.workloads import Scale

SMALL = Scale(ops_per_txn=5, txns=2)
APPS = ["update"]


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(APPS, list(CONFIGURATIONS), SMALL)


class TestSections:
    def test_fig9_markdown(self, matrix):
        text = fig9_markdown(fig9_execution_time(SMALL, APPS, results=matrix))
        assert text.startswith("| app |")
        assert "update" in text
        assert "geomean (paper)" in text
        # Header + separator + app rows + 2 geomean rows.
        assert text.count("\n") == 1 + len(APPS) + 2

    def test_fig10_markdown(self, matrix):
        text = fig10_markdown(
            fig10_pending_writes(SMALL, APPS, results=matrix))
        assert "update" in text
        assert "| B |" in text or "B |" in text.splitlines()[0]

    def test_fig11_markdown(self, matrix):
        text = fig11_markdown(
            fig11_issue_distribution(SMALL, APPS, results=matrix))
        assert "measured IPC" in text
        assert "paper IPC" in text

    def test_safety_markdown(self, matrix):
        text = safety_markdown(safety_matrix(SMALL, APPS, results=matrix))
        assert "safe" in text
        assert "UNSAFE" in text  # the U column


class TestFullReport:
    def test_structure(self, matrix):
        text = full_report(SMALL, results=matrix)
        assert text.startswith("# Measured results")
        for heading in ("## Figure 9", "## Figure 10", "## Figure 11",
                        "## Crash-consistency"):
            assert heading in text
        assert text.endswith("\n")

"""Trace cache: identity on hit, invalidation, corruption, env knobs."""

import os
import zlib

import pytest

from repro.harness import CONFIGURATIONS, configuration, run_matrix, run_one
from repro.harness.configs import DEFAULT_PARAMS
from repro.harness.parallel import run_matrix_parallel
from repro.harness.profiling import profile_enabled_by_env
from repro.harness.result_cache import (
    default_cache_dir,
    source_fingerprint,
    unframe_payload,
)
from repro.harness.trace_cache import (
    TraceCache,
    default_trace_cache_dir,
    load_or_build,
    trace_cache_enabled_by_env,
)
from repro.workloads import TEST_SCALE, Scale, base as workload_base

CONFIG = configuration("WB")

#: Table II applications (kept literal so a registry change is noticed).
SIX_APPS = ("update", "swap", "btree", "ctree", "rbtree", "rtree")


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "traces")


class TestKeys:
    def test_key_is_stable(self, cache):
        first = cache.key("btree", "ede", TEST_SCALE, DEFAULT_PARAMS)
        second = cache.key("btree", "ede", TEST_SCALE, DEFAULT_PARAMS)
        assert first == second

    def test_key_covers_every_input(self, cache):
        base = cache.key("btree", "ede", TEST_SCALE, DEFAULT_PARAMS)
        assert cache.key("update", "ede", TEST_SCALE, DEFAULT_PARAMS) != base
        assert cache.key("btree", "dsb", TEST_SCALE, DEFAULT_PARAMS) != base
        assert cache.key("btree", "ede", Scale(7, 2), DEFAULT_PARAMS) != base

    def test_key_covers_source_fingerprint(self, cache):
        clean = cache.key("btree", "ede", TEST_SCALE, DEFAULT_PARAMS,
                          fingerprint=source_fingerprint())
        dirty = cache.key("btree", "ede", TEST_SCALE, DEFAULT_PARAMS,
                          fingerprint="0" * 64)
        assert clean != dirty


class TestHitIdentity:
    @pytest.mark.parametrize("app", SIX_APPS)
    def test_cached_trace_is_bit_identical(self, cache, app):
        fresh = workload_base.build(app, CONFIG.fence_mode, TEST_SCALE)
        cached_cold = workload_base.build(app, CONFIG.fence_mode, TEST_SCALE,
                                          cache=cache)     # miss: build+store
        cached_warm = workload_base.build(app, CONFIG.fence_mode, TEST_SCALE,
                                          cache=cache)     # hit: load
        assert cache.misses == 1 and cache.hits == 1
        for loaded in (cached_cold, cached_warm):
            assert loaded.trace == fresh.trace
            assert loaded.obligations == fresh.obligations
            assert loaded.line_snapshots == fresh.line_snapshots
            assert loaded.final_memory == fresh.final_memory
            assert loaded.baseline_memory == fresh.baseline_memory

    def test_cached_trace_reproduces_pipeline_stats(self, cache):
        direct = run_one("update", CONFIG, TEST_SCALE)
        warmed = workload_base.build("update", CONFIG.fence_mode, TEST_SCALE,
                                     cache=cache)
        via_cache = run_one("update", CONFIG, TEST_SCALE,
                            built=load_or_build("update", CONFIG.fence_mode,
                                                TEST_SCALE, store=cache))
        assert cache.hits == 1
        assert via_cache.cycles == direct.cycles
        assert via_cache.stats.retired == direct.stats.retired
        assert via_cache.stats.issue_histogram == direct.stats.issue_histogram
        assert via_cache.consistency.verdict == direct.consistency.verdict
        assert warmed.trace == direct.built.trace

    def test_entries_are_compressed(self, cache):
        workload_base.build("update", "ede", TEST_SCALE, cache=cache)
        (path,) = list(cache.root.glob("*.trace"))
        body = unframe_payload(path.read_bytes())
        assert zlib.decompress(body)  # valid zlib stream under the frame
        assert len(body) < len(zlib.decompress(body))


class TestInvalidation:
    def test_dirty_fingerprint_forces_rebuild(self, cache, monkeypatch):
        workload_base.build("update", "ede", TEST_SCALE, cache=cache)
        assert len(cache) == 1
        monkeypatch.setattr("repro.harness.result_cache._SOURCE_FINGERPRINT",
                            "f" * 64)
        workload_base.build("update", "ede", TEST_SCALE, cache=cache)
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        key = cache.key("update", "ede", TEST_SCALE, DEFAULT_PARAMS)
        cache.root.mkdir(parents=True)
        path = cache._path(key)
        path.write_bytes(b"not a zlib pickle")
        assert cache.load(key) is None
        assert not path.exists()
        # The build transparently recreates the discarded entry.
        built = workload_base.build("update", "ede", TEST_SCALE, cache=cache)
        assert built.trace == workload_base.build("update", "ede",
                                                  TEST_SCALE).trace
        assert path.exists()

    def test_truncated_entry_is_discarded(self, cache):
        workload_base.build("update", "ede", TEST_SCALE, cache=cache)
        (path,) = list(cache.root.glob("*.trace"))
        path.write_bytes(path.read_bytes()[:16])
        assert cache.load(path.stem) is None
        assert not path.exists()


class TestZeroRebuildMatrix:
    def test_warm_matrix_builds_nothing(self, tmp_path):
        configs = list(CONFIGURATIONS)
        serial = run_matrix(["update"], configs, TEST_SCALE, parallel=False)
        cold = run_matrix_parallel(["update"], configs, TEST_SCALE,
                                   max_workers=1, cache=False,
                                   trace_cache=True, cache_dir=tmp_path)
        before = workload_base.BUILD_COUNT
        warm = run_matrix_parallel(["update"], configs, TEST_SCALE,
                                   max_workers=1, cache=False,
                                   trace_cache=True, cache_dir=tmp_path)
        assert workload_base.BUILD_COUNT == before  # zero interpretation
        for name in serial["update"]:
            assert (serial["update"][name].cycles
                    == cold["update"][name].cycles
                    == warm["update"][name].cycles)
            assert (serial["update"][name].stats.issue_histogram
                    == warm["update"][name].stats.issue_histogram)
            assert (serial["update"][name].consistency.verdict
                    == warm["update"][name].consistency.verdict)

    def test_traces_live_under_cache_dir(self, tmp_path):
        run_matrix_parallel(["update"], [CONFIG], TEST_SCALE, max_workers=1,
                            cache=False, trace_cache=True, cache_dir=tmp_path)
        assert len(list((tmp_path / "traces").glob("*.trace"))) == 1

    def test_explicit_no_cache_disables_trace_cache(self, tmp_path):
        run_matrix_parallel(["update"], [CONFIG], TEST_SCALE, max_workers=1,
                            cache=False, cache_dir=tmp_path)
        assert not (tmp_path / "traces").exists()


class TestEnvKnobs:
    def test_trace_cache_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert not trace_cache_enabled_by_env()
        monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
        assert trace_cache_enabled_by_env()
        monkeypatch.delenv("REPRO_TRACE_CACHE")
        assert trace_cache_enabled_by_env()

    def test_trace_cache_rejects_malformed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "yes")
        with pytest.raises(ValueError, match="REPRO_TRACE_CACHE"):
            trace_cache_enabled_by_env()

    def test_cache_dir_env_moves_traces(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_trace_cache_dir() == tmp_path / "elsewhere" / "traces"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_trace_cache_dir() == default_cache_dir() / "traces"
        assert str(default_cache_dir()) == os.path.join(".benchmarks", "cache")

    def test_profile_knob_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profile_enabled_by_env()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profile_enabled_by_env()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile_enabled_by_env()
        monkeypatch.setenv("REPRO_PROFILE", "verbose")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            profile_enabled_by_env()

    def test_profile_dumps_per_phase_stats(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "prof"))
        run_one("update", CONFIG, TEST_SCALE)
        names = sorted(p.name for p in (tmp_path / "prof").iterdir())
        assert names == [
            "update-WB.build.prof", "update-WB.build.txt",
            "update-WB.simulate.prof", "update-WB.simulate.txt",
        ]

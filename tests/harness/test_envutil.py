"""Strict shared parsing of the REPRO_* environment knobs."""

import pathlib
import re

import pytest

import repro
from repro.harness.envutil import (
    describe_env,
    env_flag,
    env_float,
    env_int,
    env_positive_int,
    env_str,
    render_env_table,
)
from repro.harness.profiling import profile_enabled_by_env
from repro.harness.result_cache import cache_enabled_by_env
from repro.harness.trace_cache import trace_cache_enabled_by_env


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", "True", " 1 "])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X", default=False) is True

    @pytest.mark.parametrize("raw", ["0", "false", "FALSE", "False"])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X", default=True) is False

    def test_unset_and_empty_mean_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_flag("REPRO_X", default=True) is True
        assert env_flag("REPRO_X", default=False) is False
        monkeypatch.setenv("REPRO_X", "")
        assert env_flag("REPRO_X", default=True) is True

    @pytest.mark.parametrize("raw", ["yes", "no", "2", "on", "off", "enable"])
    def test_junk_is_rejected_loudly(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        with pytest.raises(ValueError, match="REPRO_X"):
            env_flag("REPRO_X")

    def test_error_names_value_and_spellings(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "yes")
        with pytest.raises(ValueError, match=r"0/1/true/false.*'yes'"):
            env_flag("REPRO_X")


class TestNumericKnobs:
    def test_env_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_N", "5")
        assert env_int("REPRO_N", 2) == 5
        monkeypatch.delenv("REPRO_N")
        assert env_int("REPRO_N", 2) == 2

    def test_env_int_rejects_garbage_and_bounds(self, monkeypatch):
        monkeypatch.setenv("REPRO_N", "many")
        with pytest.raises(ValueError, match="REPRO_N"):
            env_int("REPRO_N", 2)
        monkeypatch.setenv("REPRO_N", "-1")
        with pytest.raises(ValueError, match="REPRO_N"):
            env_int("REPRO_N", 2, minimum=0)

    def test_env_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_F", "2.5")
        assert env_float("REPRO_F", 1.0) == 2.5
        monkeypatch.setenv("REPRO_F", "soon")
        with pytest.raises(ValueError, match="REPRO_F"):
            env_float("REPRO_F", 1.0)
        monkeypatch.setenv("REPRO_F", "-0.5")
        with pytest.raises(ValueError, match="REPRO_F"):
            env_float("REPRO_F", 1.0, minimum=0.0)

    def test_env_positive_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_P", "3")
        assert env_positive_int("REPRO_P", 1) == 3
        monkeypatch.setenv("REPRO_P", "0")
        with pytest.raises(ValueError, match="REPRO_P"):
            env_positive_int("REPRO_P", 1)


class TestHarnessKnobsShareTheParser:
    """Every boolean REPRO_* knob must reject junk, not silently guess."""

    @pytest.mark.parametrize("name,reader", [
        ("REPRO_RESULT_CACHE", cache_enabled_by_env),
        ("REPRO_TRACE_CACHE", trace_cache_enabled_by_env),
        ("REPRO_PROFILE", profile_enabled_by_env),
    ])
    def test_junk_rejected(self, monkeypatch, name, reader):
        monkeypatch.setenv(name, "maybe")
        with pytest.raises(ValueError, match=name):
            reader()

    @pytest.mark.parametrize("name,reader,default", [
        ("REPRO_RESULT_CACHE", cache_enabled_by_env, True),
        ("REPRO_TRACE_CACHE", trace_cache_enabled_by_env, True),
        ("REPRO_PROFILE", profile_enabled_by_env, False),
    ])
    def test_spellings_and_default(self, monkeypatch, name, reader, default):
        monkeypatch.delenv(name, raising=False)
        assert reader() is default
        monkeypatch.setenv(name, "true")
        assert reader() is True
        monkeypatch.setenv(name, "false")
        assert reader() is False


class TestEnvStr:
    def test_set_unset_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_S", "/tmp/x")
        assert env_str("REPRO_S", "d") == "/tmp/x"
        monkeypatch.setenv("REPRO_S", "")
        assert env_str("REPRO_S", "d") == "d"
        monkeypatch.delenv("REPRO_S")
        assert env_str("REPRO_S", "d") == "d"


class TestEnvRegistry:
    """describe_env() is the authoritative knob list; it must match the
    variables the code actually reads, in both directions."""

    def test_registry_matches_src_grep(self):
        src_root = pathlib.Path(repro.__file__).resolve().parent
        read_in_code = set()
        for path in sorted(src_root.rglob("*.py")):
            for token in re.findall(r"REPRO_[A-Z_]+",
                                    path.read_text(encoding="utf-8")):
                read_in_code.add(token.rstrip("_"))
        documented = {knob.name for knob in describe_env()}
        undocumented = read_in_code - documented
        stale = documented - read_in_code
        assert not undocumented, (
            "REPRO_* knobs read under src/repro but missing from "
            "describe_env(): %s" % sorted(undocumented))
        assert not stale, (
            "describe_env() documents knobs nothing reads: %s"
            % sorted(stale))

    def test_knob_shapes(self):
        kinds = {"flag", "int", "positive_int", "float", "str", "json"}
        for knob in describe_env():
            assert knob.name.startswith("REPRO_")
            assert knob.kind in kinds, knob
            assert knob.default
            assert knob.description.endswith(".")

    def test_render_lists_every_knob(self):
        table = render_env_table()
        for knob in describe_env():
            assert knob.name in table

"""Persistent result cache: identity on hit, invalidation on source change."""

import os
import pickle

import pytest

from repro.harness import CONFIGURATIONS, configuration, run_one
from repro.harness.configs import DEFAULT_PARAMS
from repro.harness.parallel import run_matrix_parallel
from repro.harness.result_cache import (
    ResultCache,
    cache_enabled_by_env,
    default_cache_dir,
    source_fingerprint,
    unframe_payload,
)
from repro.workloads import Scale, TEST_SCALE

CONFIG = configuration("WB")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_key_is_stable(self, cache):
        first = cache.key("btree", CONFIG, TEST_SCALE, DEFAULT_PARAMS)
        second = cache.key("btree", CONFIG, TEST_SCALE, DEFAULT_PARAMS)
        assert first == second

    def test_key_covers_every_input(self, cache):
        base = cache.key("btree", CONFIG, TEST_SCALE, DEFAULT_PARAMS)
        assert cache.key("update", CONFIG, TEST_SCALE, DEFAULT_PARAMS) != base
        assert cache.key("btree", configuration("IQ"), TEST_SCALE,
                         DEFAULT_PARAMS) != base
        assert cache.key("btree", CONFIG, Scale(7, 2), DEFAULT_PARAMS) != base

    def test_key_covers_source_fingerprint(self, cache):
        clean = cache.key("btree", CONFIG, TEST_SCALE, DEFAULT_PARAMS,
                          fingerprint=source_fingerprint())
        dirty = cache.key("btree", CONFIG, TEST_SCALE, DEFAULT_PARAMS,
                          fingerprint="0" * 64)
        assert clean != dirty

    def test_fingerprint_is_memoized_and_hex(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 64
        int(source_fingerprint(), 16)


class TestStoreAndLoad:
    def test_hit_returns_identical_results(self, cache):
        result = run_one("update", CONFIG, TEST_SCALE)
        key = cache.key("update", CONFIG, TEST_SCALE, DEFAULT_PARAMS)
        assert cache.load(key) is None  # cold
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.cycles == result.cycles
        assert loaded.ipc == result.ipc
        assert loaded.consistency.verdict == result.consistency.verdict
        assert loaded.stats.issue_histogram == result.stats.issue_histogram
        assert loaded.built.final_memory == result.built.final_memory
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        key = "deadbeef" * 8
        cache.root.mkdir(parents=True)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.load(key) is None
        assert not path.exists()

    def test_store_is_atomic(self, cache):
        key = "ab" * 32
        cache.store(key, {"payload": 1})
        leftovers = [p for p in cache.root.iterdir()
                     if p.suffix not in (".pkl",)]
        assert leftovers == []
        with open(cache._path(key), "rb") as handle:
            assert pickle.loads(unframe_payload(handle.read())) == {
                "payload": 1}

    def test_clear(self, cache):
        cache.store("aa" * 32, 1)
        cache.store("bb" * 32, 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestEngineIntegration:
    def test_cold_then_warm_matrix(self, tmp_path):
        configs = list(CONFIGURATIONS)
        cold = run_matrix_parallel(["update"], configs, TEST_SCALE,
                                   max_workers=1, cache=True,
                                   cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        assert len(store) == len(configs)
        warm = run_matrix_parallel(["update"], configs, TEST_SCALE,
                                   max_workers=1, cache=True,
                                   cache_dir=tmp_path)
        for name in cold["update"]:
            assert cold["update"][name].cycles == warm["update"][name].cycles
            assert (cold["update"][name].consistency.verdict
                    == warm["update"][name].consistency.verdict)

    def test_dirty_fingerprint_forces_resimulation(self, tmp_path, monkeypatch):
        configs = [CONFIG]
        run_matrix_parallel(["update"], configs, TEST_SCALE, max_workers=1,
                            cache=True, cache_dir=tmp_path)
        store = ResultCache(tmp_path)
        assert len(store) == 1

        # Simulate a source edit: the fingerprint changes, so the old entry
        # no longer matches and the run simulates (and stores) again.
        monkeypatch.setattr("repro.harness.result_cache._SOURCE_FINGERPRINT",
                            "f" * 64)
        run_matrix_parallel(["update"], configs, TEST_SCALE, max_workers=1,
                            cache=True, cache_dir=tmp_path)
        assert len(store) == 2

    def test_cache_opt_out_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert not cache_enabled_by_env()
        monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
        assert cache_enabled_by_env()
        monkeypatch.delenv("REPRO_RESULT_CACHE")
        assert cache_enabled_by_env()

    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == os.path.join(".benchmarks", "cache")

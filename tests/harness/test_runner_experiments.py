"""Tests for the runner, the experiment drivers and the timelines."""

import pytest

from repro.harness import CONFIGURATIONS, configuration, run_matrix, run_one
from repro.harness.experiments import (
    fig9_execution_time,
    fig10_pending_writes,
    fig11_issue_distribution,
    geomean,
    hazard_pointer_experiment,
    safety_matrix,
)
from repro.harness.timelines import fig8_microprogram, three_update_timeline
from repro.workloads import Scale

SMALL = Scale(ops_per_txn=5, txns=3)
KERNELS = ["update", "swap"]


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(KERNELS, list(CONFIGURATIONS), SMALL)


class TestRunner:
    def test_run_one_smoke(self):
        result = run_one("update", configuration("B"), SMALL)
        assert result.cycles > 0
        assert result.instructions == len(result.built.trace)
        assert result.consistency.observed_safe

    def test_matrix_covers_everything(self, matrix):
        assert set(matrix) == set(KERNELS)
        for app in KERNELS:
            assert set(matrix[app]) == {"B", "SU", "IQ", "WB", "U"}

    def test_iq_and_wb_share_trace(self, matrix):
        runs = matrix["update"]
        assert runs["IQ"].built is runs["WB"].built

    def test_warmup_effect(self):
        cold = run_one("update", configuration("U"), SMALL, warm=False)
        warm = run_one("update", configuration("U"), SMALL, warm=True)
        assert warm.cycles < cold.cycles


class TestFig9:
    def test_normalization(self, matrix):
        result = fig9_execution_time(SMALL, KERNELS, results=matrix)
        for app in KERNELS:
            assert result.normalized[app]["B"] == 1.0
        for name in ("SU", "IQ", "WB", "U"):
            assert 0 < result.geomean_normalized[name] <= 1.05

    def test_ordering_matches_paper(self, matrix):
        result = fig9_execution_time(SMALL, KERNELS, results=matrix)
        geo = result.geomean_normalized
        assert geo["U"] <= geo["WB"] <= geo["IQ"] <= geo["SU"] <= geo["B"]

    def test_rows_render(self, matrix):
        result = fig9_execution_time(SMALL, KERNELS, results=matrix)
        rows = result.rows()
        assert rows[0].startswith("app")
        assert any(row.startswith("geomean") for row in rows)

    def test_geomean_helper(self):
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-9
        assert geomean([2.0]) == 2.0


class TestFig10:
    def test_histograms_normalized(self, matrix):
        result = fig10_pending_writes(SMALL, KERNELS, results=matrix)
        for app in KERNELS:
            for name in ("B", "U"):
                series = result.series(app, name)
                assert abs(sum(series) - 1.0) < 1e-6

    def test_unsafe_has_most_pending(self):
        """Needs enough operations to reach buffer steady state."""
        scale = Scale(ops_per_txn=20, txns=8)
        medium = run_matrix(["update"], list(CONFIGURATIONS), scale)
        result = fig10_pending_writes(scale, ["update"], results=medium)
        means = result.mean_pending["update"]
        assert means["U"] > means["B"]
        assert means["WB"] >= means["IQ"]


class TestFig11:
    def test_distributions_shape(self, matrix):
        result = fig11_issue_distribution(SMALL, KERNELS, results=matrix)
        for app in KERNELS:
            for name in result.distributions[app]:
                series = result.distributions[app][name]
                assert len(series) == 9
                assert abs(sum(series) - 1.0) < 1e-6

    def test_zero_issue_dominates(self, matrix):
        """Section VII-B: all configurations issue 0 instructions in the
        majority of cycles."""
        result = fig11_issue_distribution(SMALL, KERNELS, results=matrix)
        for app in KERNELS:
            for name, series in result.distributions[app].items():
                assert series[0] > 0.5

    def test_ipc_ordering(self, matrix):
        result = fig11_issue_distribution(SMALL, KERNELS, results=matrix)
        assert result.mean_ipc["U"] >= result.mean_ipc["B"]


class TestSafety:
    def test_safe_configs_clean(self, matrix):
        result = safety_matrix(SMALL, KERNELS, results=matrix)
        assert result.safe_configs_clean()

    def test_unsafe_config_observed(self, matrix):
        result = safety_matrix(SMALL, KERNELS, results=matrix)
        assert any(result.violation_counts[app]["U"] > 0 for app in KERNELS)


class TestHazard:
    def test_ede_beats_fence(self):
        # Default: the contended multi-core kernel (REPRO_CORES, 2).
        result = hazard_pointer_experiment(Scale(ops_per_txn=10, txns=5))
        assert result.cores == 2
        assert result.normalized["IQ"] < 1.0
        assert result.normalized["WB"] < 1.0
        # Unordered still beats the fence, but under contention it is not
        # the lower bound any more: without ordering nothing paces the
        # stores, so the write buffer backs up (seed-dependent).
        assert result.normalized["U"] < 1.0

    def test_ede_beats_fence_single_core(self):
        # The historical single-core approximation keeps U as the floor.
        result = hazard_pointer_experiment(Scale(ops_per_txn=10, txns=5),
                                           cores=1)
        assert result.cores == 1
        assert result.normalized["IQ"] < 1.0
        assert result.normalized["WB"] < 1.0
        assert result.normalized["U"] <= result.normalized["WB"]

    def test_unmodeled_core_count_fails_loudly(self):
        import pytest

        with pytest.raises(ValueError):
            hazard_pointer_experiment(Scale(ops_per_txn=10, txns=5), cores=99)


class TestTimelines:
    def test_fig3_baseline_has_more_phases(self):
        baseline = three_update_timeline("B")
        ede = three_update_timeline("WB")
        assert baseline.phase_count() > ede.phase_count()

    def test_fig3_dsb_serializes_updates(self):
        baseline = three_update_timeline("B")
        ede = three_update_timeline("WB")
        # Under DSBs the three updates proceed in disjoint phases; with EDE
        # the update halves of independent operations overlap (Figure 3).
        assert not baseline.halves_overlap((0, "update"), (1, "update"))
        assert ede.halves_overlap((0, "update"), (1, "update"))

    def test_fig3_ede_overlaps_logs(self):
        ede = three_update_timeline("WB")
        assert ede.halves_overlap((0, "log"), (1, "log"))

    def test_fig8_iq_serializes_wb_overlaps(self):
        iq = fig8_microprogram("IQ")
        wb = fig8_microprogram("WB")
        assert wb.total_cycles < iq.total_cycles
        # Under IQ the second pair completes a full persist later (Fig. 8b);
        # under WB all four complete within a few cycles (Fig. 8a).
        iq_spread = max(iq.complete_cycles) - min(iq.complete_cycles)
        wb_spread = max(wb.complete_cycles) - min(wb.complete_cycles)
        assert wb_spread < iq_spread

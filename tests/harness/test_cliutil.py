"""The shared BrokenPipeError guard for CLI entry points.

``python -m repro.analysis ... | head`` used to die with an unhandled
``BrokenPipeError`` traceback when the pager closed the pipe early;
every CLI now routes its handler through
:func:`repro.harness.cliutil.guard_broken_pipe`, which swallows the
error, points stdout at ``/dev/null`` (so interpreter shutdown does not
trip over the dead pipe a second time) and exits cleanly.
"""

import os
import subprocess
import sys

import pytest

from repro.harness.cliutil import guard_broken_pipe


class TestGuardBrokenPipe:
    def test_passes_return_value_through(self):
        assert guard_broken_pipe(lambda: 7) == 7

    def test_forwards_args_and_kwargs(self):
        def handler(a, b, flag=False):
            return a + b + (10 if flag else 0)

        assert guard_broken_pipe(handler, 1, 2, flag=True) == 13

    def test_broken_pipe_becomes_success(self, monkeypatch):
        redirected = []
        monkeypatch.setattr(
            os, "dup2", lambda src, dst: redirected.append((src, dst)))

        def handler():
            raise BrokenPipeError

        assert guard_broken_pipe(handler) == 0
        # stdout was re-pointed at /dev/null so shutdown flushes are safe.
        assert redirected and redirected[0][1] == sys.stdout.fileno()

    def test_other_exceptions_propagate(self):
        with pytest.raises(ValueError):
            guard_broken_pipe(lambda: (_ for _ in ()).throw(ValueError("x")))


@pytest.mark.parametrize("argv", [
    ["-m", "repro.analysis", "update", "--modes", "ede"],
    ["-m", "repro.analysis", "optimize", "update", "--configs", "B",
     "--no-validate", "--format", "json"],
])
def test_cli_survives_early_pipe_close(argv):
    """End to end: pipe the CLI into a reader that closes immediately."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    writer = subprocess.Popen(
        [sys.executable, *argv], stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
    writer.stdout.close()  # reader side gone: further writes raise EPIPE
    stderr = writer.stderr.read()
    writer.stderr.close()
    writer.wait(timeout=120)
    assert b"BrokenPipeError" not in stderr
    assert b"Traceback" not in stderr

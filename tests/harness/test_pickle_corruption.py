"""PickleStore under damage: every corruption is a miss, never an error.

Satellite of the resilience work: the result cache and the trace cache
share :class:`~repro.harness.result_cache.PickleStore`, so both must
self-heal — discard and miss — for every class of on-disk damage:
truncated entries, valid-zlib-but-invalid-pickle payloads, valid pickles
of the wrong type, bit flips (caught by the CRC-32 frame), and writers
racing the atomic rename.
"""

import pickle
import threading
import zlib

import pytest

from repro.chaos import bitflip_file, truncate_file
from repro.harness.result_cache import (
    FRAME_HEADER_BYTES,
    CorruptEntryError,
    PickleStore,
    ResultCache,
    frame_payload,
    unframe_payload,
)
from repro.harness.trace_cache import TraceCache

KEY = "ab" * 32


def result_store(tmp_path):
    return ResultCache(tmp_path / "results")


def trace_store(tmp_path):
    return TraceCache(tmp_path / "traces")


#: (factory, bytes that are valid *below* the frame but not a pickle,
#:  bytes that unpickle into the wrong type for the store)
CASES = [
    (result_store,
     b"definitely not a pickle",
     pickle.dumps({"wrong": "type"})),
    (trace_store,
     zlib.compress(b"definitely not a pickle"),
     zlib.compress(pickle.dumps({"wrong": "type"}))),
]


def store_something(store):
    """Write a syntactically valid entry through the real store path."""
    # Neither store type-checks on store(), only on load() — which is the
    # point: damage and wrong types must be caught at read time.
    store.store(KEY, {"payload": list(range(100))})
    return store._path(KEY)


class TestFraming:
    def test_roundtrip(self):
        assert unframe_payload(frame_payload(b"hello")) == b"hello"

    def test_too_short_rejected(self):
        with pytest.raises(CorruptEntryError, match="shorter"):
            unframe_payload(b"RP")

    def test_bad_magic_rejected(self):
        blob = b"XXXX" + frame_payload(b"hello")[4:]
        with pytest.raises(CorruptEntryError, match="magic"):
            unframe_payload(blob)

    def test_crc_mismatch_rejected(self):
        blob = bytearray(frame_payload(b"hello"))
        blob[-1] ^= 0x01
        with pytest.raises(CorruptEntryError, match="checksum"):
            unframe_payload(bytes(blob))


@pytest.mark.parametrize("factory,bad_payload,wrong_type_payload", CASES,
                         ids=["result", "trace"])
class TestDamageIsAMiss:
    def test_truncated_to_partial_header(self, tmp_path, factory,
                                         bad_payload, wrong_type_payload):
        store = factory(tmp_path)
        path = store_something(store)
        path.write_bytes(path.read_bytes()[:FRAME_HEADER_BYTES - 2])
        assert store.load(KEY) is None
        assert not path.exists()  # discarded, not left to fail again

    def test_truncated_mid_payload(self, tmp_path, factory,
                                   bad_payload, wrong_type_payload):
        store = factory(tmp_path)
        path = store_something(store)
        truncate_file(path, fraction=0.6)
        assert store.load(KEY) is None
        assert not path.exists()

    def test_single_bit_flip(self, tmp_path, factory,
                             bad_payload, wrong_type_payload):
        import random

        store = factory(tmp_path)
        path = store_something(store)
        bitflip_file(path, random.Random(1234))
        assert store.load(KEY) is None
        assert not path.exists()

    def test_valid_frame_invalid_pickle(self, tmp_path, factory,
                                        bad_payload, wrong_type_payload):
        # The frame checks out (CRC over the damaged payload), so only the
        # deserializer can object — and its failure must still be a miss.
        store = factory(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        path = store._path(KEY)
        path.write_bytes(frame_payload(bad_payload))
        assert store.load(KEY) is None
        assert not path.exists()

    def test_valid_pickle_wrong_type(self, tmp_path, factory,
                                     bad_payload, wrong_type_payload):
        # A well-formed entry holding the wrong object (key collision,
        # tampering) must not be returned as a result/trace.
        store = factory(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        path = store._path(KEY)
        path.write_bytes(frame_payload(wrong_type_payload))
        assert store.load(KEY) is None
        assert not path.exists()

    def test_damage_counts_as_miss_not_hit(self, tmp_path, factory,
                                           bad_payload, wrong_type_payload):
        store = factory(tmp_path)
        path = store_something(store)
        truncate_file(path, fraction=0.5)
        store.load(KEY)
        assert store.hits == 0 and store.misses == 1


class TestConcurrentWriters:
    def test_writer_racing_atomic_rename(self, tmp_path):
        """Concurrent stores to one key: readers see *some* intact value.

        The atomic temp-file + ``os.replace`` protocol means a reader can
        never observe a half-written entry, no matter how the writers
        interleave — loads either hit a complete frame or miss.
        """
        # A bare PickleStore: same atomic-write machinery as both caches,
        # without the RunResult type gate (we store plain dicts here).
        store = PickleStore(tmp_path / "race")
        errors = []
        stop = threading.Event()

        def writer(tag):
            try:
                for n in range(50):
                    store.store(KEY, {"writer": tag, "n": n})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    value = store.load(KEY)
                    assert value is None or set(value) == {"writer", "n"}
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # The survivor is one of the writers' final values, fully intact.
        final = store.load(KEY)
        assert final is not None and final["n"] == 49

    def test_stale_tmp_file_does_not_break_the_store(self, tmp_path):
        """A crashed writer's leftover temp file is inert."""
        store = PickleStore(tmp_path / "stale")
        store.root.mkdir(parents=True)
        (store.root / "leftover.tmp").write_bytes(b"half a wri")
        store.store(KEY, {"v": 1})
        assert store.load(KEY) == {"v": 1}

"""The parallel engine must reproduce the serial runner bit for bit."""

import pytest

from repro.harness import CONFIGURATIONS, RunSummary, run_matrix
from repro.harness.experiments import APPLICATIONS
from repro.harness.parallel import (
    resolve_workers,
    run_matrix_parallel,
    summarize_matrix,
)
from repro.workloads import TEST_SCALE


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(list(APPLICATIONS), list(CONFIGURATIONS), TEST_SCALE,
                      parallel=False)


@pytest.fixture(scope="module")
def parallel_matrix():
    return run_matrix_parallel(list(APPLICATIONS), list(CONFIGURATIONS),
                               TEST_SCALE, max_workers=2, cache=False)


class TestSerialParallelEquality:
    def test_same_shape_and_order(self, serial_matrix, parallel_matrix):
        assert list(serial_matrix) == list(parallel_matrix)
        for app in serial_matrix:
            assert list(serial_matrix[app]) == list(parallel_matrix[app])

    def test_identical_cycles_ipc_verdicts(self, serial_matrix,
                                           parallel_matrix):
        for app in serial_matrix:
            for name in serial_matrix[app]:
                serial = serial_matrix[app][name]
                parallel = parallel_matrix[app][name]
                assert serial.cycles == parallel.cycles, (app, name)
                assert serial.ipc == parallel.ipc, (app, name)
                assert (serial.consistency.verdict
                        == parallel.consistency.verdict), (app, name)

    def test_identical_detailed_stats(self, serial_matrix, parallel_matrix):
        for app in serial_matrix:
            for name in serial_matrix[app]:
                serial = serial_matrix[app][name]
                parallel = parallel_matrix[app][name]
                assert (serial.stats.issue_histogram
                        == parallel.stats.issue_histogram)
                assert (serial.nvm_pending_samples
                        == parallel.nvm_pending_samples)
                assert serial.nvm_media_writes == parallel.nvm_media_writes

    def test_trace_shared_within_fence_mode(self, parallel_matrix):
        # IQ and WB run the same EDE binary; a worker builds it once and the
        # group's pickle graph preserves the sharing.
        for app in parallel_matrix:
            assert (parallel_matrix[app]["IQ"].built
                    is parallel_matrix[app]["WB"].built)

    def test_deterministic_across_invocations(self):
        configs = list(CONFIGURATIONS)
        first = run_matrix_parallel(["update"], configs, TEST_SCALE,
                                    max_workers=2, cache=False)
        second = run_matrix_parallel(["update"], configs, TEST_SCALE,
                                     max_workers=2, cache=False)
        for name in first["update"]:
            assert (first["update"][name].cycles
                    == second["update"][name].cycles)


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "5")
        assert resolve_workers(None) == 5

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        with pytest.raises(ValueError, match="REPRO_PARALLEL"):
            resolve_workers(None)

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_workers(None) >= 1


class TestRunSummary:
    def test_from_result(self, parallel_matrix):
        result = parallel_matrix["update"]["WB"]
        summary = RunSummary.from_result(result)
        assert summary.workload == "update"
        assert summary.config == "WB"
        assert summary.cycles == result.cycles
        assert summary.ipc == result.ipc
        assert summary.verdict == result.consistency.verdict

    def test_summarize_matrix(self, parallel_matrix):
        rows = summarize_matrix(parallel_matrix)
        assert len(rows) == len(APPLICATIONS) * len(CONFIGURATIONS)
        assert {row.workload for row in rows} == set(APPLICATIONS)

"""Shared-memory trace transport: round-trips, ownership, no leaks.

Segments are parent-owned: workers attach, copy and detach without ever
unlinking, and the parent's :class:`TraceTransport` guarantees unlink on
every exit path — normal completion, supervisor retries after a chaos
kill, and interpreter exit.  A leaked ``repro-trace-*`` segment eats
``/dev/shm`` until reboot, so every test here ends by asserting none
survived.
"""

import pytest

from repro.chaos import FaultPlan, FaultSpec, summarize_state
from repro.harness import CONFIGURATIONS, run_matrix
from repro.harness.parallel import last_matrix_report, run_matrix_parallel
from repro.harness.shm_transport import (
    SEGMENT_PREFIX,
    TraceTransport,
    attach_object,
    attach_payload,
    orphaned_segments,
    shm_enabled_by_env,
)
from repro.workloads import TEST_SCALE

APPS = ["update", "swap"]
CONFIGS = list(CONFIGURATIONS)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test starts and ends with a clean /dev/shm."""
    assert orphaned_segments() == []
    yield
    assert orphaned_segments() == []


class TestKnob:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled_by_env() is False
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_enabled_by_env() is True
        monkeypatch.setenv("REPRO_SHM", "bogus")
        with pytest.raises(ValueError):
            shm_enabled_by_env()


class TestTransport:
    def test_round_trip_bytes_and_objects(self):
        transport = TraceTransport()
        try:
            payload = b"\x00\x01persist-ordering\xff" * 97
            name = transport.publish(payload)
            assert name.startswith(SEGMENT_PREFIX)
            # The OS rounds segments up to a page; the header keeps the
            # exact length.
            assert attach_payload(name) == payload

            value = {"trace": list(range(100)), "mode": "ede"}
            assert attach_object(transport.publish_object(value)) == value
            assert len(transport) == 2
        finally:
            transport.close()

    def test_empty_payload(self):
        transport = TraceTransport()
        try:
            assert attach_payload(transport.publish(b"")) == b""
        finally:
            transport.close()

    def test_attach_does_not_destroy_the_segment(self):
        """Worker-side attach/detach leaves the parent's segment alive
        for the next worker (and the next retry of the same group)."""
        transport = TraceTransport()
        try:
            name = transport.publish_object([1, 2, 3])
            for _ in range(3):  # three "workers", one segment
                assert attach_object(name) == [1, 2, 3]
            assert orphaned_segments() == [name]
        finally:
            transport.close()

    def test_close_unlinks_and_is_idempotent(self):
        transport = TraceTransport()
        name = transport.publish(b"payload")
        assert orphaned_segments() == [name]
        transport.close()
        assert orphaned_segments() == []
        assert len(transport) == 0
        transport.close()  # second close: no-op, no error
        with pytest.raises(FileNotFoundError):
            attach_payload(name)


class TestMatrixWithShm:
    def test_results_identical_and_no_leak(self, monkeypatch):
        serial = run_matrix(APPS, CONFIGS, TEST_SCALE, parallel=False)
        monkeypatch.setenv("REPRO_SHM", "1")
        results = run_matrix_parallel(APPS, CONFIGS, TEST_SCALE,
                                      max_workers=2, cache=False,
                                      trace_cache=False)
        for app in APPS:
            for config in CONFIGS:
                assert (results[app][config.name].cycles
                        == serial[app][config.name].cycles), (app, config)
        # The autouse fixture re-checks, but the interesting moment is
        # now, right after the supervised run returned.
        assert orphaned_segments() == []

    def test_chaos_kill_retries_converge_without_leak(self, tmp_path,
                                                      monkeypatch):
        """A worker murdered mid-group: the supervisor respawns and
        retries against the *same parent-owned segment*, and teardown
        still unlinks everything."""
        serial = run_matrix(APPS, CONFIGS, TEST_SCALE, parallel=False)
        monkeypatch.setenv("REPRO_SHM", "1")
        plan = FaultPlan(
            faults=[FaultSpec(point="worker", action="kill",
                              match="update/*")],
            state_dir=str(tmp_path / "chaos-state"),
            seed=2021)
        with plan.installed():
            results = run_matrix_parallel(APPS, CONFIGS, TEST_SCALE,
                                          max_workers=2, cache=False,
                                          trace_cache=False,
                                          retries=3, backoff=0.01)
        assert summarize_state(plan)["worker[update/*]:kill"] == 1
        report = last_matrix_report()
        assert report is not None and report.all_succeeded
        assert report.total_retries >= 1
        for app in APPS:
            for config in CONFIGS:
                assert (results[app][config.name].cycles
                        == serial[app][config.name].cycles), (app, config)
        assert orphaned_segments() == []

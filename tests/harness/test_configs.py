"""Tests for Table I parameters and Table III configurations."""

import pytest

from repro.harness.configs import (
    CONFIGURATIONS,
    DEFAULT_PARAMS,
    configuration,
)
from repro.nvmfw import codegen


class TestTable1:
    def test_row_values_match_paper(self):
        rows = dict(DEFAULT_PARAMS.table())
        assert "3-instr decode width" in rows["Processor"]
        assert rows["Ld-St queue"] == "16 entries each"
        assert rows["Write buffer"] == "16 entries"
        assert rows["L1 D-cache"] == "48KB, 3-way, 1-cycle access latency"
        assert rows["L2 cache"] == "256KB, 16-way, 12-cycle access latency"
        assert rows["L3 cache"] == "1MB/core, 16-way, 20-cycle access latency"
        assert rows["Capacity"] == "DRAM: 2GB; NVM: 2GB"
        assert rows["NVM latency"] == "150ns read; 500ns write"
        assert rows["NVM line size"] == "256B"
        assert rows["NVM on-DIMM buffer"] == "128 slots"
        assert rows["DRAM ranks per channel"] == "2"
        assert rows["DRAM banks per rank"] == "16"

    def test_model_actually_uses_them(self):
        params = DEFAULT_PARAMS
        assert params.core.decode_width == 3
        assert params.nvm.read_cycles == 450   # 150 ns at 3 GHz
        assert params.nvm.write_cycles == 1500  # 500 ns
        assert params.nvm.buffer_slots == 128
        assert params.hierarchy.l1d_size == 48 << 10


class TestTable3:
    def test_five_configurations_in_paper_order(self):
        assert [c.name for c in CONFIGURATIONS] == ["B", "SU", "IQ", "WB", "U"]

    def test_fence_modes(self):
        assert configuration("B").fence_mode == codegen.MODE_DSB
        assert configuration("SU").fence_mode == codegen.MODE_DMB_ST
        assert configuration("IQ").fence_mode == codegen.MODE_EDE
        assert configuration("WB").fence_mode == codegen.MODE_EDE
        assert configuration("U").fence_mode == codegen.MODE_NONE

    def test_policies(self):
        assert configuration("IQ").policy.enforce_at_issue
        assert configuration("WB").policy.enforce_at_write_buffer
        for name in ("B", "SU", "U"):
            assert not configuration(name).policy.enforces_ede

    def test_safety_flags(self):
        assert configuration("B").safe_by_spec
        assert configuration("IQ").safe_by_spec
        assert configuration("WB").safe_by_spec
        assert not configuration("SU").safe_by_spec
        assert not configuration("U").safe_by_spec

    def test_lookup_case_insensitive(self):
        assert configuration("wb").name == "WB"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            configuration("QQ")

"""Graceful-drain tests: in-process semantics and the SIGTERM path.

A draining server must refuse *new* admissions with 503 + Retry-After
while status/result/metrics queries keep working, finish every admitted
job (persisting each group's results to the cache on completion), then
exit cleanly.  The subprocess test drives the real signal path:
``python -m repro.service serve`` gets SIGTERM mid-backlog and must
exit 0 with every admitted result in the shared cache.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service import DrainingError, JobSpec, ServiceClient, ThreadedServer
from repro.service.client import ServiceError


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=4, txns=2, seed=2021)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def server(tmp_path):
    with ThreadedServer(max_workers=1,
                        cache_dir=tmp_path / "cache") as threaded:
        yield threaded


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port, client_id="pytest")


class TestDrainSemantics:
    def test_draining_refuses_new_admissions_with_503(self, server, client):
        server.call(server.scheduler.pause)
        admitted = client.submit(spec_for("update", "B"))
        server.call(server.scheduler.begin_drain)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_for("update", "WB"))
        assert excinfo.value.status == 503
        assert excinfo.value.payload["draining"] is True
        assert excinfo.value.payload["retry_after_s"] > 0
        # Already-admitted work still finishes (drain overrides pause)
        # and read paths keep working throughout.
        final = client.wait(admitted["id"])
        assert final["state"] == "done"
        assert client.healthz()["draining"] is True
        assert "repro_jobs_rejected_total 1" in client.metrics()

    def test_drain_raises_in_scheduler(self, server):
        server.call(server.scheduler.begin_drain)

        def submit():
            return server.scheduler.submit(spec_for("swap", "B"))

        with pytest.raises(DrainingError):
            server.call(submit)

    def test_healthz_reports_drain_state(self, server, client):
        assert client.healthz()["status"] == "ok"
        server.call(server.scheduler.begin_drain)
        health = client.healthz()
        assert health["status"] == "draining"
        assert health["draining"] is True


class TestSigtermDrain:
    def test_sigterm_finishes_backlog_and_exits_zero(self, tmp_path):
        """The acceptance path: SIGTERM mid-backlog -> refuse new work,
        finish admitted jobs, persist results, exit 0."""
        cache_dir = tmp_path / "cache"
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1]) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", "0", "--port-file", str(port_file),
             "--workers", "1", "--cache-dir", str(cache_dir)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists() or not port_file.read_text().strip():
                assert process.poll() is None, "server died during startup"
                assert time.monotonic() < deadline, "no port file within 60s"
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            client = ServiceClient(port=port, client_id="drain-test")
            specs = [spec_for("update", "B", seed=3000 + i)
                     for i in range(3)]
            statuses = [client.submit_retrying(spec) for spec in specs]
            assert len({status["id"] for status in statuses}) == 3
            # SIGTERM with the backlog admitted but (likely) unfinished.
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)
        text = output.decode(errors="replace")
        assert process.returncode == 0, text
        assert "draining: refusing new jobs" in text
        # Every admitted job's result was persisted before exit.
        entries = list(cache_dir.glob("*.pkl"))
        assert len(entries) >= 3, \
            "expected >=3 cached results after drain, found %d in %s\n%s" \
            % (len(entries), cache_dir, text)


class TestSubmitRetrying:
    """submit_retrying honours the server's Retry-After with jitter."""

    class FakeRng:
        def __init__(self, values):
            self.values = list(values)

        def random(self):
            return self.values.pop(0)

    class StubClient(ServiceClient):
        """Overrides the transport: scripted submit outcomes."""

        def __init__(self, outcomes):
            super().__init__(port=1)
            self.outcomes = list(outcomes)

        def submit(self, spec, priority=0):
            outcome = self.outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return dict(outcome)

    def backpressure(self, retry_after_s):
        from repro.service.client import Backpressure

        return Backpressure(429, {"error": "queue full",
                                  "retry_after_s": retry_after_s})

    def test_honours_server_hint_with_jitter_and_reports_wait(self):
        stub = self.StubClient([
            self.backpressure(2.0),
            self.backpressure(4.0),
            {"id": "sim-x", "state": "queued"},
        ])
        sleeps = []
        status = stub.submit_retrying(
            spec_for("update", "B"), jitter=0.25,
            rng=self.FakeRng([0.5, 1.0]), sleep=sleeps.append)
        # 2.0 * (1 + 0.25*0.5) = 2.25; 4.0 * (1 + 0.25*1.0) = 5.0
        assert sleeps == [pytest.approx(2.25), pytest.approx(5.0)]
        assert status["queue_full_retries"] == 2
        assert status["queue_wait_s"] == pytest.approx(sum(sleeps))
        assert status["id"] == "sim-x"

    def test_caps_sleep_at_max(self):
        stub = self.StubClient([
            self.backpressure(300.0),
            {"id": "sim-y", "state": "queued"},
        ])
        sleeps = []
        stub.submit_retrying(spec_for("update", "B"), max_sleep_s=10.0,
                             rng=self.FakeRng([1.0]), sleep=sleeps.append)
        assert sleeps == [pytest.approx(10.0)]

    def test_first_try_admission_reports_zero_wait(self):
        stub = self.StubClient([{"id": "sim-z", "state": "queued"}])
        status = stub.submit_retrying(spec_for("update", "B"),
                                      sleep=lambda _s: None)
        assert status["queue_wait_s"] == 0
        assert status["queue_full_retries"] == 0

    def test_gives_up_past_deadline(self):
        from repro.service.client import Backpressure

        stub = self.StubClient([self.backpressure(5.0)] * 50)
        with pytest.raises(Backpressure):
            stub.submit_retrying(spec_for("update", "B"),
                                 give_up_after_s=0.0,
                                 sleep=lambda _s: None)


def test_drain_timeout_knob(monkeypatch):
    from repro.service.server import drain_timeout_by_env

    assert drain_timeout_by_env() == 60.0
    monkeypatch.setenv("REPRO_DRAIN_TIMEOUT", "5.5")
    assert drain_timeout_by_env() == 5.5
    monkeypatch.setenv("REPRO_DRAIN_TIMEOUT", "soon")
    with pytest.raises(ValueError, match="REPRO_DRAIN_TIMEOUT"):
        drain_timeout_by_env()

"""Unit tests for service metrics and the Prometheus rendering."""

import pytest

from repro.service.client import parse_metrics
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)


class TestCounter:
    def test_inc_and_labels(self):
        counter = Counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(2, kind="simulate")
        assert counter.value() == 1
        assert counter.value(kind="simulate") == 2
        assert counter.total() == 3

    def test_monotonic(self):
        counter = Counter("jobs_total", "Jobs.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_render(self):
        counter = Counter("jobs_total", "Jobs.")
        counter.inc(kind="simulate")
        text = "\n".join(counter.render())
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="simulate"} 1' in text

    def test_zero_sample_when_untouched(self):
        assert Counter("x_total", "X.").samples() == ["x_total 0"]


class TestGauge:
    def test_set_add(self):
        gauge = Gauge("depth", "Depth.")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value() == 3


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = Histogram("lat", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = "\n".join(hist.samples())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert hist.sum == pytest.approx(5.55)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", "Latency.", buckets=())


class TestRegistry:
    def test_duplicate_rejected(self):
        registry = MetricsRegistry()
        registry.register(Counter("a_total", "A."))
        with pytest.raises(ValueError):
            registry.register(Gauge("a_total", "Again."))

    def test_render_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.register(Counter("a_total", "A."))
        assert registry.render().endswith("\n")


class TestServiceMetrics:
    def test_acceptance_metrics_present(self):
        """The /metrics page must expose queue depth, cache-hit ratio,
        coalesce count and per-outcome job counts."""
        metrics = ServiceMetrics()
        metrics.jobs_completed.inc(outcome="done")
        metrics.jobs_completed.inc(outcome="failed")
        text = metrics.render()
        for required in ("repro_queue_depth",
                         "repro_cache_hit_ratio",
                         "repro_singleflight_coalesced_total",
                         'repro_jobs_completed_total{outcome="done"}',
                         'repro_jobs_completed_total{outcome="failed"}',
                         "repro_job_latency_seconds_bucket"):
            assert required in text, required

    def test_cache_hit_ratio_computed_on_render(self):
        metrics = ServiceMetrics()
        metrics.cache_hits.inc(3)
        metrics.cache_misses.inc(1)
        samples = parse_metrics(metrics.render())
        assert samples["repro_cache_hit_ratio"] == pytest.approx(0.75)

    def test_ratio_zero_when_idle(self):
        samples = parse_metrics(ServiceMetrics().render())
        assert samples["repro_cache_hit_ratio"] == 0.0

    def test_note_outcome_feeds_histogram(self):
        metrics = ServiceMetrics()
        metrics.note_outcome("done", 0.25)
        metrics.note_outcome("failed", None)  # no latency: not observed
        assert metrics.job_latency.count == 1
        assert metrics.jobs_completed.value(outcome="failed") == 1


class TestParseMetrics:
    def test_parses_samples_and_skips_comments(self):
        text = ("# HELP a_total A.\n# TYPE a_total counter\n"
                'a_total{kind="x"} 3\nb_gauge 1.5\n')
        samples = parse_metrics(text)
        assert samples['a_total{kind="x"}'] == 3.0
        assert samples["b_gauge"] == 1.5

"""End-to-end service tests over real HTTP on an ephemeral port.

Covers the subsystem's three load-bearing guarantees:

* **exactly-once**: duplicate submissions of one spec — queued or
  in-flight — run the simulation exactly once (single-flight), and
  later duplicates are served from the in-process registry or the
  persistent result cache without re-simulating;
* **backpressure**: a full queue rejects with 429 + Retry-After
  instead of accepting unbounded work;
* **bit-identical**: results served over HTTP equal serial
  :func:`repro.harness.runner.run_matrix` output field for field.
"""

import http.client
import json
import threading

import pytest

from repro.harness import CONFIGURATIONS, run_matrix
from repro.service import (
    JobSpec,
    ServiceClient,
    ThreadedServer,
    result_digest,
)
from repro.service.client import Backpressure, ServiceError
from repro.service.queue import BoundedJobQueue
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=5, txns=2)


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                  seed=SCALE.seed)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def server(tmp_path):
    with ThreadedServer(max_workers=1,
                        cache_dir=tmp_path / "cache") as threaded:
        yield threaded


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port, client_id="pytest")


class TestBitIdentical:
    def test_served_results_equal_serial_run_matrix(self, client):
        """The acceptance matrix: B/WB x update/swap served over HTTP,
        compared digest-for-digest against the serial runner."""
        workloads, configs = ["update", "swap"], ["B", "WB"]
        serial = run_matrix(workloads,
                            [c for c in CONFIGURATIONS if c.name in configs],
                            SCALE, parallel=False, cache=False)
        statuses = client.submit_matrix(workloads, configs,
                                        SCALE.ops_per_txn, SCALE.txns)
        finals = client.wait_all(statuses)
        assert all(status["state"] == "done" for status in finals)
        index = 0
        for workload in workloads:
            for config in configs:
                reference = serial[workload][config]
                served = client.result_pickle(statuses[index]["id"])
                assert result_digest(served) == result_digest(reference)
                assert served.cycles == reference.cycles
                assert served.stats == reference.stats
                assert list(served.persist_log) == \
                    list(reference.persist_log)
                summary = client.result(statuses[index]["id"])
                assert summary["digest"] == result_digest(reference)
                assert summary["cycles"] == reference.cycles
                index += 1


class TestExactlyOnce:
    def test_single_flight_coalesces_queued_duplicates(self, server, client):
        server.call(server.scheduler.pause)
        first = client.submit(spec_for("update", "B"))
        dup_one = client.submit(spec_for("update", "B"))
        dup_two = client.submit(spec_for("update", "B"))
        assert first["disposition"] == "created"
        assert dup_one["disposition"] == "coalesced"
        assert dup_two["disposition"] == "coalesced"
        assert dup_one["id"] == first["id"] == dup_two["id"]
        server.call(server.scheduler.resume)
        final = client.wait(first["id"])
        assert final["state"] == "done"
        assert final["coalesced"] == 2
        samples = client.metric_samples()
        assert samples["repro_simulations_run_total"] == 1
        assert samples["repro_singleflight_coalesced_total"] == 2

    def test_same_spec_different_seeds_all_complete(self, server, client):
        """Seeds are part of a batch task's identity: jobs differing
        only by seed must not collide in the dispatch bookkeeping
        (a colliding task ID left all but one stuck RUNNING)."""
        server.call(server.scheduler.pause)
        statuses = [client.submit(spec_for("update", "B", seed=2021 + i))
                    for i in range(4)]
        assert len({status["id"] for status in statuses}) == 4
        server.call(server.scheduler.resume)
        finals = client.wait_all(statuses)
        assert all(status["state"] == "done" for status in finals)
        samples = client.metric_samples()
        assert samples["repro_simulations_run_total"] == 4

    def test_concurrent_duplicate_submissions_run_once(self, server):
        """Ten clients race to submit the same spec: one simulation."""
        results = []

        def submit():
            local = ServiceClient(port=server.port, client_id="racer")
            status = local.submit(spec_for("swap", "WB"))
            results.append(local.wait(status["id"]))

        threads = [threading.Thread(target=submit) for _ in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert len(results) == 10
        assert len({status["id"] for status in results}) == 1
        assert all(status["state"] == "done" for status in results)
        samples = ServiceClient(port=server.port).metric_samples()
        assert samples["repro_simulations_run_total"] == 1

    def test_duplicate_after_completion_not_rerun(self, client):
        first = client.submit(spec_for("update", "IQ"))
        client.wait(first["id"])
        again = client.submit(spec_for("update", "IQ"))
        assert again["disposition"] == "completed"
        assert again["id"] == first["id"]
        assert client.metric_samples()["repro_simulations_run_total"] == 1

    def test_warm_cache_across_restart(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ThreadedServer(max_workers=1, cache_dir=cache_dir) as first:
            cold_client = ServiceClient(port=first.port)
            status = cold_client.submit(spec_for("update", "U"))
            cold_client.wait(status["id"])
            cold = cold_client.result(status["id"])
        with ThreadedServer(max_workers=1, cache_dir=cache_dir) as second:
            warm_client = ServiceClient(port=second.port)
            status = warm_client.submit(spec_for("update", "U"))
            assert status["disposition"] == "cached"
            assert status["state"] == "done"
            warm = warm_client.result(status["id"])
            assert warm["digest"] == cold["digest"]
            samples = warm_client.metric_samples()
            assert samples["repro_result_cache_hits_total"] == 1
            assert samples["repro_cache_hit_ratio"] == 1.0
            assert samples["repro_simulations_run_total"] == 0

    def test_batch_shares_one_trace_group(self, server, client):
        """Same workload + fence mode in one batch: one supervised
        group serves both configurations (IQ and WB both run ede)."""
        server.call(server.scheduler.pause)
        statuses = [client.submit(spec_for("update", name))
                    for name in ("IQ", "WB")]
        server.call(server.scheduler.resume)
        client.wait_all(statuses)
        samples = client.metric_samples()
        assert samples["repro_groups_executed_total"] == 1
        assert samples["repro_simulations_run_total"] == 2


class TestBackpressure:
    @pytest.fixture
    def small_server(self, tmp_path):
        with ThreadedServer(max_workers=1, cache_dir=tmp_path / "cache",
                            queue=BoundedJobQueue(max_depth=2)) as threaded:
            yield threaded

    def test_full_queue_rejects_with_retry_after(self, small_server):
        client = ServiceClient(port=small_server.port)
        small_server.call(small_server.scheduler.pause)
        client.submit(spec_for("update", "B"))
        client.submit(spec_for("update", "WB"))
        with pytest.raises(Backpressure) as info:
            client.submit(spec_for("swap", "B"))
        assert info.value.status == 429
        assert info.value.retry_after_s > 0
        samples = client.metric_samples()
        assert samples["repro_jobs_rejected_total"] == 1
        assert samples["repro_queue_depth"] == 2
        # The rejected job was never admitted anywhere.
        with pytest.raises(ServiceError):
            client.status("sim-missing")
        small_server.call(small_server.scheduler.resume)

    def test_retry_after_header_on_the_wire(self, small_server):
        client = ServiceClient(port=small_server.port)
        small_server.call(small_server.scheduler.pause)
        client.submit(spec_for("update", "B"))
        client.submit(spec_for("update", "WB"))
        conn = http.client.HTTPConnection("127.0.0.1", small_server.port,
                                          timeout=30)
        conn.request("POST", "/jobs", body=json.dumps(
            {"spec": spec_for("swap", "B").to_dict()}).encode(),
            headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read().decode())
        conn.close()
        assert response.status == 429
        assert int(response.headers["Retry-After"]) >= 1
        assert body["retry_after_s"] > 0
        small_server.call(small_server.scheduler.resume)

    def test_capacity_frees_after_drain(self, small_server):
        client = ServiceClient(port=small_server.port)
        statuses = [client.submit(spec_for("update", "B")),
                    client.submit(spec_for("update", "WB"))]
        client.wait_all(statuses)
        accepted = client.submit(spec_for("swap", "B"))
        assert accepted["disposition"] == "created"
        client.wait(accepted["id"])


class TestHttpSurface:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["paused"] is False

    def test_metrics_exposes_required_series(self, client):
        status = client.submit(spec_for("update", "B"))
        client.wait(status["id"])
        text = client.metrics()
        for required in ("repro_queue_depth",
                         "repro_cache_hit_ratio",
                         "repro_singleflight_coalesced_total",
                         'repro_jobs_completed_total{outcome="done"}',
                         "repro_job_latency_seconds_count"):
            assert required in text, required

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit({"kind": "simulate", "workload": "nope",
                           "config": "B"})
        assert info.value.status == 400
        assert "unknown workload" in str(info.value)

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.status("sim-does-not-exist")
        assert info.value.status == 404

    def test_result_before_done_is_409(self, server, client):
        server.call(server.scheduler.pause)
        status = client.submit(spec_for("update", "B"))
        with pytest.raises(ServiceError) as info:
            client.result(status["id"])
        assert info.value.status == 409
        server.call(server.scheduler.resume)
        client.wait(status["id"])

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/frobnicate")
        assert info.value.status == 404

    def test_sse_stream_replays_to_terminal(self, server, client):
        server.call(server.scheduler.pause)
        status = client.submit(spec_for("update", "SU"))
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=60)
        conn.request("GET", "/jobs/%s/events" % status["id"])
        server.call(server.scheduler.resume)
        response = conn.getresponse()
        assert response.getheader("Content-Type") == "text/event-stream"
        body = response.read().decode()
        conn.close()
        events = [line.split(": ", 1)[1] for line in body.splitlines()
                  if line.startswith("event: ")]
        assert events[0] == "queued"
        assert events[-1] == "done"
        payloads = [json.loads(line.split(": ", 1)[1])
                    for line in body.splitlines()
                    if line.startswith("data: ")]
        assert all(p["job"] == status["id"] for p in payloads)


class TestAnalysisJobs:
    def test_analysis_served_and_deduped(self, server, client):
        spec = JobSpec(kind="analyze", workload="update", config="ede",
                       ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns)
        first = client.submit(spec)
        final = client.wait(first["id"])
        assert final["state"] == "done"
        report = client.result(first["id"])["report"]
        assert report["target"] == "update"
        assert report["mode"] == "ede"
        assert "findings" in report
        again = client.submit(spec)
        assert again["disposition"] == "completed"

"""Unit tests for the bounded fair admission queue."""

import pytest

from repro.service.jobs import Job, JobSpec, job_id_for
from repro.service.queue import (
    BoundedJobQueue,
    MAX_RETRY_AFTER_S,
    MIN_RETRY_AFTER_S,
    QueueFullError,
)


def make_job(config="B", workload="update", client="anonymous", priority=0,
             ops=5):
    spec = JobSpec(kind="simulate", workload=workload, config=config,
                   ops_per_txn=ops, txns=2)
    return Job(spec, job_id_for(spec), client=client, priority=priority)


class TestBounds:
    def test_depth_bound_rejects(self):
        queue = BoundedJobQueue(max_depth=2)
        queue.put(make_job("B"))
        queue.put(make_job("WB"))
        with pytest.raises(QueueFullError) as info:
            queue.put(make_job("IQ"))
        assert info.value.depth == 2
        assert info.value.retry_after_s >= MIN_RETRY_AFTER_S
        assert queue.rejected == 1
        assert len(queue) == 2  # rejected job was not admitted

    def test_pop_frees_capacity(self):
        queue = BoundedJobQueue(max_depth=1)
        queue.put(make_job("B"))
        assert queue.pop() is not None
        queue.put(make_job("WB"))  # no raise

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            BoundedJobQueue(max_depth=0)

    def test_empty_pop_is_none(self):
        assert BoundedJobQueue().pop() is None


class TestFairness:
    def test_round_robin_between_clients(self):
        """Client B's single job is served second, not after all of A's."""
        queue = BoundedJobQueue()
        for config in ("B", "SU", "IQ"):
            queue.put(make_job(config, client="alice"))
        queue.put(make_job("WB", client="bob"))
        order = [(job.client, job.spec.config)
                 for job in queue.drain()]
        assert order == [("alice", "B"), ("bob", "WB"),
                         ("alice", "SU"), ("alice", "IQ")]

    def test_priority_within_client(self):
        queue = BoundedJobQueue()
        queue.put(make_job("B", priority=5))
        queue.put(make_job("WB", priority=1))
        queue.put(make_job("IQ", priority=5))
        configs = [job.spec.config for job in queue.drain()]
        assert configs == ["WB", "B", "IQ"]  # low number first, then FIFO

    def test_depth_by_client(self):
        queue = BoundedJobQueue()
        queue.put(make_job("B", client="alice"))
        queue.put(make_job("WB", client="alice"))
        queue.put(make_job("IQ", client="bob"))
        assert queue.depth_by_client() == {"alice": 2, "bob": 1}

    def test_drain_limit(self):
        queue = BoundedJobQueue()
        for config in ("B", "SU", "IQ"):
            queue.put(make_job(config))
        assert len(queue.drain(2)) == 2
        assert len(queue) == 1


class TestRetryAfter:
    def test_scales_with_backlog_and_latency(self):
        queue = BoundedJobQueue(max_depth=100)
        for config in ("B", "SU", "IQ", "WB"):
            queue.put(make_job(config))
        queue.mean_service_s = 2.0
        slow = queue.suggest_retry_after()
        queue.mean_service_s = 0.001
        fast = queue.suggest_retry_after()
        assert slow > fast
        assert fast >= MIN_RETRY_AFTER_S
        assert slow <= MAX_RETRY_AFTER_S

    def test_ewma_moves_toward_observation(self):
        queue = BoundedJobQueue()
        queue.mean_service_s = 1.0
        queue.note_latency(3.0)
        assert 1.0 < queue.mean_service_s < 3.0
        before = queue.mean_service_s
        queue.note_latency(3.0)
        assert before < queue.mean_service_s < 3.0

    def test_workers_divide_the_estimate(self):
        queue = BoundedJobQueue(max_depth=100)
        for config in ("B", "SU", "IQ", "WB", "U"):
            queue.put(make_job(config))
        queue.mean_service_s = 10.0
        queue.workers = 1
        serial = queue.suggest_retry_after()
        queue.workers = 10
        parallel = queue.suggest_retry_after()
        assert parallel < serial

"""Unit tests for the service job model: IDs, specs, digests."""

import pytest

from repro.harness import DEFAULT_PARAMS, ResultCache, run_one
from repro.harness.configs import CONFIG_BY_NAME
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    job_id_for,
    result_cache_key,
    result_digest,
)
from repro.workloads import Scale

SPEC = JobSpec(kind="simulate", workload="update", config="B",
               ops_per_txn=5, txns=2)


class TestJobSpec:
    def test_scale_roundtrip(self):
        assert SPEC.scale == Scale(ops_per_txn=5, txns=2, seed=2021)

    def test_configuration_resolves(self):
        assert SPEC.configuration is CONFIG_BY_NAME["B"]

    def test_analyze_has_no_configuration(self):
        spec = JobSpec(kind="analyze", workload="update", config="ede")
        with pytest.raises(ValueError, match="fence mode"):
            spec.configuration

    def test_dict_roundtrip(self):
        assert JobSpec.from_dict(SPEC.to_dict()) == SPEC

    @pytest.mark.parametrize("mutation,message", [
        ({"kind": "frobnicate"}, "unknown job kind"),
        ({"workload": "nope"}, "unknown workload"),
        ({"config": "XX"}, "unknown configuration"),
        ({"ops_per_txn": 0}, "positive"),
        ({"txns": -1}, "positive"),
    ])
    def test_validation_is_loud(self, mutation, message):
        data = dict(SPEC.to_dict())
        data.update(mutation)
        with pytest.raises(ValueError, match=message):
            JobSpec.from_dict(data)

    def test_analyze_mode_validated(self):
        data = dict(SPEC.to_dict())
        data.update(kind="analyze", config="B")  # B is not a fence mode
        with pytest.raises(ValueError, match="unknown fence mode"):
            JobSpec.from_dict(data)

    def test_unknown_and_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_dict({**SPEC.to_dict(), "frob": 1})
        with pytest.raises(ValueError, match="missing field"):
            JobSpec.from_dict({"kind": "simulate"})
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "dict"])

    def test_non_integer_scale_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            JobSpec.from_dict({**SPEC.to_dict(), "txns": "2"})


class TestJobIds:
    def test_simulate_id_reuses_result_cache_key(self, tmp_path):
        """The job ID *is* the cache address: same digest the parallel
        engine stores results under."""
        store = ResultCache(tmp_path)
        expected = store.key(SPEC.workload, SPEC.configuration, SPEC.scale,
                             DEFAULT_PARAMS)
        assert result_cache_key(SPEC) == expected
        assert job_id_for(SPEC) == "sim-" + expected

    def test_identical_specs_identical_ids(self):
        twin = JobSpec(kind="simulate", workload="update", config="B",
                       ops_per_txn=5, txns=2)
        assert job_id_for(twin) == job_id_for(SPEC)

    @pytest.mark.parametrize("mutation", [
        {"config": "WB"}, {"workload": "swap"}, {"ops_per_txn": 6},
        {"txns": 3}, {"seed": 7}, {"kind": "analyze", "config": "ede"},
    ])
    def test_different_specs_different_ids(self, mutation):
        other = JobSpec.from_dict({**SPEC.to_dict(), **mutation})
        assert job_id_for(other) != job_id_for(SPEC)


class TestJobLifecycle:
    def test_transitions_and_events(self):
        job = Job(SPEC, job_id_for(SPEC), client="alice")
        assert job.state == JobState.QUEUED
        assert job.latency_s is None
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        assert job.state == JobState.DONE
        assert job.latency_s is not None
        assert [e["event"] for e in job.events] == ["running", "done"]
        assert job.done_event.is_set()

    def test_failure_records_error(self):
        job = Job(SPEC, job_id_for(SPEC))
        job.transition(JobState.FAILED, error="boom")
        assert job.error == "boom"
        assert job.to_status()["error"] == "boom"

    def test_status_shape(self):
        job = Job(SPEC, job_id_for(SPEC), client="alice", priority=3)
        status = job.to_status()
        assert status["id"] == job.id
        assert status["spec"] == SPEC.to_dict()
        assert status["client"] == "alice"
        assert status["priority"] == 3
        assert status["coalesced"] == 0


class TestResultDigest:
    @pytest.fixture(scope="class")
    def runs(self):
        scale = Scale(ops_per_txn=5, txns=2)
        return {
            name: run_one("update", CONFIG_BY_NAME[name], scale)
            for name in ("B", "WB")
        }

    def test_deterministic_across_reruns(self, runs):
        again = run_one("update", CONFIG_BY_NAME["B"],
                        Scale(ops_per_txn=5, txns=2))
        assert result_digest(runs["B"]) == result_digest(again)

    def test_distinguishes_configurations(self, runs):
        assert result_digest(runs["B"]) != result_digest(runs["WB"])

"""The ``optimize`` service job: spec validation, content addressing,
single-flight, on-disk report caching, and HTTP end to end.

The design invariant: an optimize job's ID *is* its ReportCache address
(``opt-`` + :func:`repro.service.jobs.optimize_cache_key`), so the
scheduler — and, unchanged, the cluster coordinator — routes,
single-flights and cache-serves optimize jobs with exactly the machinery
built for simulations.
"""

import asyncio

import pytest

from repro.harness.result_cache import ReportCache
from repro.service.jobs import (
    JobSpec,
    JobState,
    job_id_for,
    optimize_cache_key,
)
from repro.service.scheduler import Scheduler
from repro.service.server import ThreadedServer
from repro.service.client import ServiceClient

SPEC = JobSpec(kind="optimize", workload="update", config="B",
               ops_per_txn=5, txns=2, conservative=True, budget=8)


class TestSpecValidation:
    def test_roundtrip(self):
        assert JobSpec.from_dict(SPEC.to_dict()) == SPEC

    def test_configuration_resolves(self):
        assert SPEC.configuration.name == "B"

    @pytest.mark.parametrize("mutation,message", [
        ({"config": "dsb"}, "unknown configuration"),
        ({"kind": "simulate"}, "optimize jobs only"),
        ({"kind": "analyze", "config": "ede"}, "optimize jobs only"),
        ({"budget": -1}, "budget"),
        ({"budget": "8"}, "integer"),
        ({"conservative": 1}, "boolean"),
    ])
    def test_rejections_are_loud(self, mutation, message):
        with pytest.raises(ValueError, match=message):
            JobSpec.from_dict({**SPEC.to_dict(), **mutation})

    def test_plain_jobs_may_leave_knobs_at_defaults(self):
        data = {**SPEC.to_dict(), "kind": "simulate",
                "conservative": False, "budget": 0}
        assert JobSpec.from_dict(data).kind == "simulate"


class TestContentAddressing:
    def test_id_is_the_report_cache_address(self):
        assert job_id_for(SPEC) == "opt-" + optimize_cache_key(SPEC)

    def test_identical_specs_identical_ids(self):
        twin = JobSpec(kind="optimize", workload="update", config="B",
                       ops_per_txn=5, txns=2, conservative=True, budget=8)
        assert job_id_for(twin) == job_id_for(SPEC)

    @pytest.mark.parametrize("mutation", [
        {"config": "IQ"}, {"workload": "swap"}, {"conservative": False},
        {"budget": 9}, {"txns": 3},
    ])
    def test_every_knob_is_part_of_the_identity(self, mutation):
        other = JobSpec.from_dict({**SPEC.to_dict(), **mutation})
        assert job_id_for(other) != job_id_for(SPEC)

    def test_optimize_never_collides_with_simulate(self):
        sim = JobSpec(kind="simulate", workload="update", config="B",
                      ops_per_txn=5, txns=2)
        opt = JobSpec(kind="optimize", workload="update", config="B",
                      ops_per_txn=5, txns=2)
        assert job_id_for(sim) != job_id_for(opt)


def _run_scheduler(coro):
    async def body():
        return await coro()

    return asyncio.run(body())


class TestSchedulerIntegration:
    def test_created_then_completed_then_cached(self, tmp_path):
        """One spec, three lifetimes: executed once, coalesced-completed
        in-process, and served from the on-disk ReportCache by a fresh
        scheduler that never ran anything."""
        cache_dir = tmp_path / "cache"

        async def first():
            scheduler = Scheduler(max_workers=1, cache=True,
                                  cache_dir=cache_dir)
            scheduler.start()
            try:
                job, disposition = scheduler.submit(SPEC)
                assert disposition == "created"
                await asyncio.wait_for(job.done_event.wait(), timeout=300)
                assert job.state == JobState.DONE
                assert isinstance(job.result, dict)
                assert job.result["status"] in ("optimized",
                                                "proven-minimal")
                _, again = scheduler.submit(SPEC)
                assert again == "completed"
                return job.result
            finally:
                await scheduler.stop()

        result = _run_scheduler(first)
        assert result["validation"]["digest_match"] is True

        # The report landed in the shared cache directory...
        store = ReportCache(cache_dir)
        assert store.load(optimize_cache_key(SPEC)) == result

        # ...so a brand-new scheduler serves it without executing.
        async def second():
            scheduler = Scheduler(max_workers=1, cache=True,
                                  cache_dir=cache_dir)
            scheduler.start()
            try:
                job, disposition = scheduler.submit(SPEC)
                assert disposition == "cached"
                assert job.from_cache
                assert job.result == result
            finally:
                await scheduler.stop()

        _run_scheduler(second)

    def test_inflight_duplicates_coalesce(self, tmp_path):
        async def body():
            scheduler = Scheduler(max_workers=1, cache=True,
                                  cache_dir=tmp_path / "cache")
            scheduler.pause()  # keep the job queued
            scheduler.start()
            try:
                job, first = scheduler.submit(SPEC)
                twin, second = scheduler.submit(SPEC)
                assert (first, second) == ("created", "coalesced")
                assert twin is job
                assert job.coalesced == 1
            finally:
                await scheduler.stop()

        _run_scheduler(body)


class TestHttpEndToEnd:
    def test_optimize_over_http_matches_direct_call(self, tmp_path):
        from repro.analysis.autotune import autotune_workload
        from repro.workloads import Scale

        with ThreadedServer(max_workers=1,
                            cache_dir=tmp_path / "cache") as server:
            client = ServiceClient(port=server.port, client_id="pytest")
            status = client.submit_retrying(SPEC)
            final = client.wait(status["id"])
            assert final["state"] == "done"
            report = client.result(status["id"])["report"]

        direct = autotune_workload(
            "update", "B", scale=Scale(ops_per_txn=5, txns=2),
            conservative=True, budget=8).to_dict()
        assert report == direct
        assert report["status"] == "optimized"
        assert report["ordering"]["removed"] > 0
        assert report["validation"]["digest_match"] is True

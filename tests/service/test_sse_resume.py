"""SSE resumption: server event IDs + client ``Last-Event-ID`` replay.

The watch stream used to be fire-and-forget: a dropped connection
mid-``wait_all`` raised out of the client.  Now every event carries an
``id:`` line, a reconnecting client sends the standard
``Last-Event-ID`` header, and the server replays from the event *after*
it — so a truncated stream (proxy fault, coordinator restart) costs a
reconnect, never a duplicate or a lost event.
"""

import http.client
import json

import pytest

from repro.chaos.netproxy import NetFaultPlan, NetFaultSpec, ThreadedFaultProxy
from repro.service import JobSpec, ServiceClient, ThreadedServer
from repro.workloads import Scale

SCALE = Scale(ops_per_txn=4, txns=2)


def spec_for(workload, config, **overrides):
    fields = dict(kind="simulate", workload=workload, config=config,
                  ops_per_txn=SCALE.ops_per_txn, txns=SCALE.txns,
                  seed=SCALE.seed)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture
def server(tmp_path):
    with ThreadedServer(max_workers=1, cache_dir=tmp_path / "cache") as srv:
        yield srv


@pytest.fixture
def finished_job(server):
    client = ServiceClient(port=server.port, client_id="pytest")
    status = client.submit(spec_for("update", "B"))
    client.wait(status["id"])
    return status["id"]


def _raw_stream(port, job_id, last_event_id=None):
    """One raw events connection; returns the response body bytes."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    headers = {}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    conn.request("GET", "/jobs/%s/events" % job_id, headers=headers)
    response = conn.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "text/event-stream"
    body = response.read()
    conn.close()
    return body


def _event_ids(body):
    return [int(line.split(":", 1)[1])
            for line in body.decode().splitlines()
            if line.startswith("id:")]


class TestServerSide:
    def test_events_carry_sequential_ids(self, server, finished_job):
        body = _raw_stream(server.port, finished_job)
        ids = _event_ids(body)
        assert ids == list(range(len(ids)))
        assert len(ids) >= 2                      # at least queued + done
        assert "event: done" in body.decode()

    def test_last_event_id_resumes_after_that_event(self, server,
                                                    finished_job):
        full = _event_ids(_raw_stream(server.port, finished_job))
        resumed = _event_ids(_raw_stream(server.port, finished_job,
                                         last_event_id=0))
        assert resumed == full[1:]
        # Resuming past the end replays nothing but still terminates.
        tail = _event_ids(_raw_stream(server.port, finished_job,
                                      last_event_id=full[-1]))
        assert tail == []


class TestClientWatch:
    def test_watch_yields_every_event_once(self, server, finished_job):
        client = ServiceClient(port=server.port, client_id="pytest")
        events = list(client.watch(finished_job))
        assert [e["event"] for e in events][-1] == "done"
        assert len(events) == len(_event_ids(_raw_stream(server.port,
                                                         finished_job)))

    def test_wait_via_events(self, server):
        client = ServiceClient(port=server.port, client_id="pytest")
        status = client.submit(spec_for("swap", "WB"))
        final = client.wait(status["id"], via_events=True)
        assert final["state"] == "done"

    def test_watch_resumes_across_a_truncated_stream(self, server,
                                                     finished_job):
        """Cut the stream mid-flight after exactly one event: the watch
        must reconnect with Last-Event-ID and deliver the remainder —
        no duplicates, no raise."""
        raw = _raw_stream(server.port, finished_job)
        full_ids = _event_ids(raw)
        # Byte offset of the end of the first event block, counted from
        # the start of the response (headers included), so the proxy's
        # s2c budget cuts exactly there.
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("GET", "/jobs/%s/events" % finished_job)
        resp = conn.getresponse()
        header_bytes = len(b"HTTP/1.1 200 OK\r\n") + sum(
            len(("%s: %s\r\n" % (k, v)).encode())
            for k, v in resp.getheaders()) + 2
        conn.close()
        first_event_len = raw.index(b"\n\n") + 2
        cut_at = header_bytes + first_event_len

        plan = NetFaultPlan(faults=[NetFaultSpec(
            action="truncate", times=1, after_bytes=cut_at,
            direction="s2c")])
        with ThreadedFaultProxy(upstream_host="127.0.0.1",
                                upstream_port=server.port,
                                plan=plan) as proxy:
            client = ServiceClient(port=proxy.port, client_id="pytest")
            events = list(client.watch(finished_job))
            stats = proxy.stats()
        assert stats["truncate"] == 1
        assert stats["connections"] >= 2          # the reconnect happened
        assert len(events) == len(full_ids)       # nothing lost
        assert [e["event"] for e in events][-1] == "done"
        # No duplicates: the event sequence is exactly the full replay.
        replay = [json.loads(line.split(":", 1)[1])
                  for line in raw.decode().splitlines()
                  if line.startswith("data:")]
        assert [e["event"] for e in events] == [e["event"] for e in replay]
